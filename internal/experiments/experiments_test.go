//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig shrinks everything so the full harness paths run in seconds.
func tinyConfig() Config {
	c := Fast()
	c.RowCap = 300
	c.SynthRows = 200
	c.Opts.AEIters = 60
	c.Opts.DiffIters = 100
	c.Opts.GANIters = 60
	c.Opts.Batch = 64
	c.UtilCfg.Boost.NumRounds = 5
	c.UtilCfg.MaxColumns = 4
	c.PrivCfg.Attacks = 50
	return c
}

func TestTableIIMatchesPaper(t *testing.T) {
	rows, err := Fast().TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]TableIIRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	churn := byName["churn"]
	if churn.After != 2964 || churn.Before != 14 {
		t.Fatalf("churn sizes wrong: %+v", churn)
	}
	if churn.Increase < 211 || churn.Increase > 212 {
		t.Fatalf("churn increase %v, paper says 211.71", churn.Increase)
	}
	var buf bytes.Buffer
	PrintTableII(&buf, rows)
	if !strings.Contains(buf.String(), "churn") {
		t.Fatal("printout missing dataset")
	}
}

func TestTableIIIGridStructure(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"loan"}
	c.Models = []string{"gan-linear", "silofuse"}
	g, err := c.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Datasets) != 1 || len(g.Models) != 2 {
		t.Fatalf("grid shape: %v x %v", g.Datasets, g.Models)
	}
	for _, m := range g.Models {
		s := g.Cell("loan", m)
		if s.Mean < 0 || s.Mean > 100 {
			t.Fatalf("%s score out of range: %v", m, s)
		}
	}
	var buf bytes.Buffer
	PrintGrid(&buf, g)
	out := buf.String()
	if !strings.Contains(out, "SiloFuse") || !strings.Contains(out, "PPD") {
		t.Fatalf("grid printout incomplete:\n%s", out)
	}
}

func TestTableIVGrid(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"loan"}
	c.Models = []string{"silofuse"}
	g, err := c.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	s := g.Cell("loan", "SiloFuse")
	if s.Mean < 0 || s.Mean > 100 {
		t.Fatalf("utility out of range: %v", s)
	}
}

func TestTableVHeatmaps(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"cardio"}
	c.Models = []string{"silofuse", "tabddpm"}
	cells, err := c.TableV()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, cell := range cells {
		if cell.MeanDiff < 0 || cell.MeanDiff > 1 {
			t.Fatalf("mean diff out of range: %v", cell.MeanDiff)
		}
		lines := strings.Split(strings.TrimRight(cell.HeatMap, "\n"), "\n")
		if len(lines) != 12 { // cardio has 12 columns
			t.Fatalf("heat map shape: %d lines", len(lines))
		}
	}
	var buf bytes.Buffer
	PrintTableV(&buf, cells)
	if !strings.Contains(buf.String(), "cardio") {
		t.Fatal("printout missing dataset")
	}
}

func TestTableVI(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"diabetes"}
	c.Models = []string{"silofuse", "latentdiff"}
	g, err := c.TableVI()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range g.Models {
		s := g.Cell("diabetes", m)
		if s.Mean < 0 || s.Mean > 100 {
			t.Fatalf("privacy out of range: %v", s)
		}
	}
}

func TestTableVIIStepSweep(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"abalone"}
	rows, err := c.TableVII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Scores) != 3 {
		t.Fatalf("rows: %+v", rows)
	}
	var buf bytes.Buffer
	PrintTableVII(&buf, rows)
	if !strings.Contains(buf.String(), "abalone") {
		t.Fatal("printout missing dataset")
	}
}

// TestFigure10Shape verifies the paper's headline communication property:
// SiloFuse cost is flat across iteration counts while E2EDistr grows
// linearly and dominates at every reported point.
func TestFigure10Shape(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"abalone"}
	series, err := c.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("series = %d", len(series))
	}
	s := series[0]
	if s.SiloFuseBytes[0] != s.SiloFuseBytes[1] || s.SiloFuseBytes[1] != s.SiloFuseBytes[2] {
		t.Fatalf("SiloFuse bytes must be constant: %v", s.SiloFuseBytes)
	}
	if s.E2EDistrBytes[1] != 10*s.E2EDistrBytes[0] || s.E2EDistrBytes[2] != 100*s.E2EDistrBytes[0] {
		t.Fatalf("E2EDistr bytes must scale linearly: %v", s.E2EDistrBytes)
	}
	for i := range s.Iterations {
		if s.E2EDistrBytes[i] <= s.SiloFuseBytes[i] {
			t.Fatalf("E2EDistr should dominate at %d iters", s.Iterations[i])
		}
	}
	var buf bytes.Buffer
	PrintFigure10(&buf, series)
	if !strings.Contains(buf.String(), "SiloFuse") {
		t.Fatal("printout incomplete")
	}
}

func TestFigure11Robustness(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"loan"}
	points, err := c.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 { // {4,8} clients x {default, permuted}
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Resemblance.Mean < 0 || p.Resemblance.Mean > 100 || p.Utility.Mean < 0 || p.Utility.Mean > 100 {
			t.Fatalf("scores out of range: %+v", p)
		}
	}
	var buf bytes.Buffer
	PrintFigure11(&buf, points)
	if !strings.Contains(buf.String(), "permuted") {
		t.Fatal("printout incomplete")
	}
}

func TestStatFormatting(t *testing.T) {
	s := statOf([]float64{50, 60})
	if s.Mean != 55 || s.Std != 5 {
		t.Fatalf("stat = %+v", s)
	}
	if s.String() != "55.0±5.00" {
		t.Fatalf("format = %s", s.String())
	}
	if z := statOf(nil); z.Mean != 0 || z.Std != 0 {
		t.Fatal("empty stat should be zero")
	}
}

func TestConfigDatasetErrors(t *testing.T) {
	c := Fast()
	c.Datasets = []string{"nope"}
	if _, err := c.TableII(); err == nil {
		t.Fatal("expected unknown dataset error")
	}
}

func TestAblationsStructure(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"loan"}
	rows, err := c.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("variants = %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Variant] = true
		if r.Resemblance.Mean < 0 || r.Resemblance.Mean > 100 {
			t.Fatalf("%s resemblance out of range: %v", r.Variant, r.Resemblance)
		}
	}
	for _, want := range []string{"baseline", "no-whitening", "mean-decode", "cosine-schedule", "ema-0.995", "steps-5"} {
		if !names[want] {
			t.Fatalf("missing variant %s", want)
		}
	}
	var buf bytes.Buffer
	PrintAblations(&buf, rows)
	if !strings.Contains(buf.String(), "no-whitening") {
		t.Fatal("printout incomplete")
	}
}
