//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package experiments

import (
	"bytes"
	"strings"
	"testing"

	"silofuse/internal/obs"
)

// tinyConfig shrinks everything so the full harness paths run in seconds.
func tinyConfig() Config {
	c := Fast()
	c.RowCap = 300
	c.SynthRows = 200
	c.Opts.AEIters = 60
	c.Opts.DiffIters = 100
	c.Opts.GANIters = 60
	c.Opts.Batch = 64
	c.UtilCfg.Boost.NumRounds = 5
	c.UtilCfg.MaxColumns = 4
	c.PrivCfg.Attacks = 50
	return c
}

func TestTableIIMatchesPaper(t *testing.T) {
	rows, err := Fast().TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]TableIIRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	churn := byName["churn"]
	if churn.After != 2964 || churn.Before != 14 {
		t.Fatalf("churn sizes wrong: %+v", churn)
	}
	if churn.Increase < 211 || churn.Increase > 212 {
		t.Fatalf("churn increase %v, paper says 211.71", churn.Increase)
	}
	var buf bytes.Buffer
	PrintTableII(&buf, rows)
	if !strings.Contains(buf.String(), "churn") {
		t.Fatal("printout missing dataset")
	}
}

func TestTableIIIGridStructure(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"loan"}
	c.Models = []string{"gan-linear", "silofuse"}
	g, err := c.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Datasets) != 1 || len(g.Models) != 2 {
		t.Fatalf("grid shape: %v x %v", g.Datasets, g.Models)
	}
	for _, m := range g.Models {
		s := g.Cell("loan", m)
		if s.Mean < 0 || s.Mean > 100 {
			t.Fatalf("%s score out of range: %v", m, s)
		}
	}
	var buf bytes.Buffer
	PrintGrid(&buf, g)
	out := buf.String()
	if !strings.Contains(out, "SiloFuse") || !strings.Contains(out, "PPD") {
		t.Fatalf("grid printout incomplete:\n%s", out)
	}
}

func TestTableIVGrid(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"loan"}
	c.Models = []string{"silofuse"}
	g, err := c.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	s := g.Cell("loan", "SiloFuse")
	if s.Mean < 0 || s.Mean > 100 {
		t.Fatalf("utility out of range: %v", s)
	}
}

func TestTableVHeatmaps(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"cardio"}
	c.Models = []string{"silofuse", "tabddpm"}
	cells, err := c.TableV()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, cell := range cells {
		if cell.MeanDiff < 0 || cell.MeanDiff > 1 {
			t.Fatalf("mean diff out of range: %v", cell.MeanDiff)
		}
		lines := strings.Split(strings.TrimRight(cell.HeatMap, "\n"), "\n")
		if len(lines) != 12 { // cardio has 12 columns
			t.Fatalf("heat map shape: %d lines", len(lines))
		}
	}
	var buf bytes.Buffer
	PrintTableV(&buf, cells)
	if !strings.Contains(buf.String(), "cardio") {
		t.Fatal("printout missing dataset")
	}
}

func TestTableVI(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"diabetes"}
	c.Models = []string{"silofuse", "latentdiff"}
	g, err := c.TableVI()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range g.Models {
		s := g.Cell("diabetes", m)
		if s.Mean < 0 || s.Mean > 100 {
			t.Fatalf("privacy out of range: %v", s)
		}
	}
}

func TestTableVIIStepSweep(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"abalone"}
	rows, err := c.TableVII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Scores) != 3 {
		t.Fatalf("rows: %+v", rows)
	}
	var buf bytes.Buffer
	PrintTableVII(&buf, rows)
	if !strings.Contains(buf.String(), "abalone") {
		t.Fatal("printout missing dataset")
	}
}

// TestFigure10Shape verifies the paper's headline communication property:
// SiloFuse cost is flat across iteration counts while E2EDistr grows
// linearly and dominates at every reported point.
func TestFigure10Shape(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"abalone"}
	series, err := c.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("series = %d", len(series))
	}
	s := series[0]
	if s.SiloFuseBytes[0] != s.SiloFuseBytes[1] || s.SiloFuseBytes[1] != s.SiloFuseBytes[2] {
		t.Fatalf("SiloFuse bytes must be constant: %v", s.SiloFuseBytes)
	}
	if s.E2EDistrBytes[1] != 10*s.E2EDistrBytes[0] || s.E2EDistrBytes[2] != 100*s.E2EDistrBytes[0] {
		t.Fatalf("E2EDistr bytes must scale linearly: %v", s.E2EDistrBytes)
	}
	for i := range s.Iterations {
		if s.E2EDistrBytes[i] <= s.SiloFuseBytes[i] {
			t.Fatalf("E2EDistr should dominate at %d iters", s.Iterations[i])
		}
	}
	var buf bytes.Buffer
	PrintFigure10(&buf, series)
	if !strings.Contains(buf.String(), "SiloFuse") {
		t.Fatal("printout incomplete")
	}
}

// TestFigure10XCodecSweep pins the headline of the codec tier: against the
// gob/f64 byte model, f32 at least halves-ish (≥1.8x) the tensor payloads of
// both distributed models with rounding-scale error, q8 cuts further with
// quantization-scale error, and the replayed accounting reaches the main
// recorder so bench snapshots see it.
func TestFigure10XCodecSweep(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"abalone"}
	main := obs.NewRecorder()
	c.Opts.Recorder = main
	rows, err := c.Figure10X()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 4 codecs x 2 models
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	byKey := map[string]Figure10XRow{}
	for _, r := range rows {
		byKey[r.Model+"/"+r.Codec] = r
	}
	for _, model := range []string{"silofuse", "e2edistr"} {
		none, f64r, f32r, q8r := byKey[model+"/none"], byKey[model+"/f64"], byKey[model+"/f32"], byKey[model+"/q8"]
		// Raw f64 framing matches the historical gob byte model exactly.
		if f64r.TotalBytes != none.TotalBytes {
			t.Errorf("%s: f64 total %d != gob total %d", model, f64r.TotalBytes, none.TotalBytes)
		}
		if f64r.MaxErr != 0 {
			t.Errorf("%s: lossless f64 reported error %g", model, f64r.MaxErr)
		}
		if f64r.EncBytes == 0 || f32r.EncBytes == 0 || q8r.EncBytes == 0 {
			t.Fatalf("%s: codec rows missing tensor bytes: %+v %+v %+v", model, f64r, f32r, q8r)
		}
		// The wire win the PR promises: f32 cuts tensor bytes >= 1.8x.
		if ratio := float64(f64r.EncBytes) / float64(f32r.EncBytes); ratio < 1.8 {
			t.Errorf("%s: f32 tensor bytes ratio %.2f, want >= 1.8", model, ratio)
		}
		if q8r.EncBytes >= f32r.EncBytes {
			t.Errorf("%s: q8 (%d B) should undercut f32 (%d B)", model, q8r.EncBytes, f32r.EncBytes)
		}
		// Errors are ordered by tier and bounded: rounding scale for f32,
		// quantization scale for q8.
		if f32r.MaxErr <= 0 || f32r.MaxErr > 1e-5 {
			t.Errorf("%s: f32 max err %g out of rounding scale", model, f32r.MaxErr)
		}
		if q8r.MaxErr <= f32r.MaxErr || q8r.MaxErr > 0.1 {
			t.Errorf("%s: q8 max err %g out of quantization scale (f32 %g)", model, q8r.MaxErr, f32r.MaxErr)
		}
	}
	// The replayed accounting lands in the main recorder under the same
	// wire_* families the bench snapshot parses.
	snap := NewBenchSnapshot("fig10x", "fast")
	snap.FromRecorder(main)
	lat := snap.Wire["f32/latents"]
	if lat.Messages == 0 || lat.Bytes == 0 || lat.MaxErr == 0 {
		t.Fatalf("replayed f32/latents accounting missing: %+v (wire=%v)", lat, snap.Wire)
	}

	var buf bytes.Buffer
	PrintFigure10X(&buf, rows)
	if !strings.Contains(buf.String(), "q8") || !strings.Contains(buf.String(), "vs gob") {
		t.Fatal("printout incomplete")
	}
}

func TestFigure11Robustness(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"loan"}
	points, err := c.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 { // {4,8} clients x {default, permuted}
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Resemblance.Mean < 0 || p.Resemblance.Mean > 100 || p.Utility.Mean < 0 || p.Utility.Mean > 100 {
			t.Fatalf("scores out of range: %+v", p)
		}
	}
	var buf bytes.Buffer
	PrintFigure11(&buf, points)
	if !strings.Contains(buf.String(), "permuted") {
		t.Fatal("printout incomplete")
	}
}

func TestStatFormatting(t *testing.T) {
	s := statOf([]float64{50, 60})
	if s.Mean != 55 || s.Std != 5 {
		t.Fatalf("stat = %+v", s)
	}
	if s.String() != "55.0±5.00" {
		t.Fatalf("format = %s", s.String())
	}
	if z := statOf(nil); z.Mean != 0 || z.Std != 0 {
		t.Fatal("empty stat should be zero")
	}
}

func TestConfigDatasetErrors(t *testing.T) {
	c := Fast()
	c.Datasets = []string{"nope"}
	if _, err := c.TableII(); err == nil {
		t.Fatal("expected unknown dataset error")
	}
}

func TestAblationsStructure(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"loan"}
	rows, err := c.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("variants = %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Variant] = true
		if r.Resemblance.Mean < 0 || r.Resemblance.Mean > 100 {
			t.Fatalf("%s resemblance out of range: %v", r.Variant, r.Resemblance)
		}
	}
	for _, want := range []string{"baseline", "no-whitening", "mean-decode", "cosine-schedule", "ema-0.995", "steps-5"} {
		if !names[want] {
			t.Fatalf("missing variant %s", want)
		}
	}
	var buf bytes.Buffer
	PrintAblations(&buf, rows)
	if !strings.Contains(buf.String(), "no-whitening") {
		t.Fatal("printout incomplete")
	}
}
