package experiments

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"silofuse/internal/obs/profile"
)

// Synthetic pprof builders: a minimal cpu profile with single-frame
// samples, assembled on the wire format the stdlib decoder parses.

func pbVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func pbTag(b []byte, num, wire int) []byte { return pbVarint(b, uint64(num)<<3|uint64(wire)) }

func pbBytes(b []byte, num int, payload []byte) []byte {
	b = pbTag(b, num, 2)
	b = pbVarint(b, uint64(len(payload)))
	return append(b, payload...)
}

func pbUint(b []byte, num int, v uint64) []byte {
	b = pbTag(b, num, 0)
	return pbVarint(b, v)
}

// writeCPUProfile writes a gzipped cpu/nanoseconds profile where each
// named function is the leaf of one sample with the given self weight.
func writeCPUProfile(t *testing.T, path string, selfNanos map[string]int64) {
	t.Helper()
	strtab := []string{"", "cpu", "nanoseconds"}
	var msg []byte
	msg = pbBytes(msg, 1, pbUint(pbUint(nil, 1, 1), 2, 2)) // sample_type cpu/ns
	names := make([]string, 0, len(selfNanos))
	for name := range selfNanos {
		names = append(names, name)
	}
	// Deterministic ids for reproducible fixtures.
	sort.Strings(names)
	for i, name := range names {
		id := uint64(i + 1)
		strtab = append(strtab, name)
		nameIdx := uint64(len(strtab) - 1)
		msg = pbBytes(msg, 5, pbUint(pbUint(nil, 1, id), 2, nameIdx))             // function
		msg = pbBytes(msg, 4, pbBytes(pbUint(nil, 1, id), 4, pbUint(nil, 1, id))) // location{line{function_id}}
		sample := pbBytes(nil, 1, pbVarint(nil, id))                              // location_ids (packed)
		sample = pbBytes(sample, 2, pbVarint(nil, uint64(selfNanos[name])))       // values (packed)
		msg = pbBytes(msg, 2, sample)
	}
	for _, s := range strtab {
		msg = pbBytes(msg, 6, []byte(s))
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(msg)
	zw.Close()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseProfileFor(t *testing.T) {
	for _, tc := range []struct {
		metric, phase, kind string
		ok                  bool
	}{
		{"rows_per_sec/diffusion", "diffusion-train", "cpu", true},
		{"step_p95_sec/ae", "ae-train", "cpu", true},
		{"allocs_per_step/e2e", "e2e-train", "heap", true},
		{"alloc_bytes_per_step/diffusion", "diffusion-train", "heap", true},
		{"phase_sec/latent-ship", "latent-ship", "cpu", true},
		{"loss/diffusion-train", "diffusion-train", "cpu", true},
		{"loss/ae", "ae-train", "cpu", true},
		{"wire_bytes/latents", "", "", false},
		{"rows_per_sec/unknown-stage", "", "", false},
		{"nometricclass", "", "", false},
	} {
		phase, kind, ok := PhaseProfileFor(tc.metric)
		if phase != tc.phase || kind != tc.kind || ok != tc.ok {
			t.Errorf("PhaseProfileFor(%s) = %q/%q/%v, want %q/%q/%v",
				tc.metric, phase, kind, ok, tc.phase, tc.kind, tc.ok)
		}
	}
}

func TestAttributeRegressionsNamesCulprit(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	file := filepath.Join(ProfilesSubdir, profile.EntryFileName("diffusion-train", profile.KindCPU))
	writeCPUProfile(t, filepath.Join(baseDir, file), map[string]int64{
		"diffusion.(*Model).TrainStep": 400_000_000,
		"tensor.MatMulInto":            300_000_000,
	})
	writeCPUProfile(t, filepath.Join(curDir, file), map[string]int64{
		"diffusion.(*Model).TrainStep":     410_000_000,
		"tensor.MatMulInto":                310_000_000,
		"diffusion.(*Model).debugSpinStep": 900_000_000,
	})

	base := map[string]float64{"rows_per_sec/diffusion": 40000}
	cur := map[string]float64{"rows_per_sec/diffusion": 9000}
	rep := DiffMetrics(base, cur, DefaultDiffThresholds())
	if rep.Regressions == 0 {
		t.Fatal("expected a throughput regression")
	}

	atts := AttributeRegressions(rep, baseDir, curDir, 3)
	if len(atts) != 1 {
		t.Fatalf("got %d attributions, want 1: %+v", len(atts), atts)
	}
	a := atts[0]
	if a.Phase != "diffusion-train" || a.Kind != "cpu" || a.Err != "" {
		t.Fatalf("attribution = %+v", a)
	}
	if len(a.Top) == 0 || a.Top[0].Name != "diffusion.(*Model).debugSpinStep" {
		t.Fatalf("top delta = %+v, want debugSpinStep first", a.Top)
	}

	var buf bytes.Buffer
	if err := WriteAttributions(&buf, atts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "debugSpinStep") || !strings.Contains(out, "rows_per_sec/diffusion") {
		t.Fatalf("rendered attribution missing culprit/metric:\n%s", out)
	}
}

func TestAttributeRegressionsMissingProfiles(t *testing.T) {
	base := map[string]float64{"rows_per_sec/diffusion": 40000}
	cur := map[string]float64{"rows_per_sec/diffusion": 9000}
	rep := DiffMetrics(base, cur, DefaultDiffThresholds())
	atts := AttributeRegressions(rep, t.TempDir(), t.TempDir(), 0)
	if len(atts) != 1 || atts[0].Err == "" {
		t.Fatalf("want one attribution with Err set, got %+v", atts)
	}
	var buf bytes.Buffer
	if err := WriteAttributions(&buf, atts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "unavailable") {
		t.Fatalf("missing-profile rendering:\n%s", buf.String())
	}
}

func TestAttributeRegressionsGroupsMetrics(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	file := filepath.Join(ProfilesSubdir, profile.EntryFileName("diffusion-train", profile.KindCPU))
	writeCPUProfile(t, filepath.Join(baseDir, file), map[string]int64{"f": 1})
	writeCPUProfile(t, filepath.Join(curDir, file), map[string]int64{"f": 2})
	rep := &DiffReport{
		Entries: []DiffEntry{
			{Metric: "rows_per_sec/diffusion", Regressed: true},
			{Metric: "step_p95_sec/diffusion", Regressed: true},
			{Metric: "wire_bytes/latents", Regressed: true}, // no profile mapping
		},
		Regressions: 3,
	}
	atts := AttributeRegressions(rep, baseDir, curDir, 0)
	if len(atts) != 1 {
		t.Fatalf("got %d attributions, want 1 grouped: %+v", len(atts), atts)
	}
	if len(atts[0].Metrics) != 2 {
		t.Fatalf("grouped metrics = %v", atts[0].Metrics)
	}
}
