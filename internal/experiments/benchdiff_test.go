//silofuse:bitwise-ok diff-gate tests pin exact metric flattening and threshold arithmetic
package experiments

import (
	"strings"
	"testing"
)

func baseMetrics() map[string]float64 {
	return map[string]float64{
		"rows_per_sec/ae":            1000,
		"step_p95_sec/ae":            0.010,
		"allocs_per_step/ae":         4,
		"alloc_bytes_per_step/ae":    4096,
		"wire_bytes/latents":         100_000,
		"wire_enc_bytes/f32/latents": 50_000,
		"wire_err_max/f32/latents":   2e-7,
		"wire_err_max/f64/grad-up":   0,
		"loss/diffusion-train":       0.85,
		"phase_sec/diffusion-train":  2.0,
	}
}

// TestDiffMetricsClean checks that an identical pair of metric sets compares
// regression-free under the default thresholds.
func TestDiffMetricsClean(t *testing.T) {
	rep := DiffMetrics(baseMetrics(), baseMetrics(), DefaultDiffThresholds())
	if rep.Regressions != 0 {
		t.Fatalf("identical metrics produced %d regressions: %+v", rep.Regressions, rep.Entries)
	}
	if len(rep.Entries) != len(baseMetrics()) {
		t.Fatalf("entries = %d, want %d", len(rep.Entries), len(baseMetrics()))
	}
}

// TestDiffMetricsThroughputRegression checks the headline gate: an injected
// throughput collapse past the threshold is flagged, while a drop within the
// threshold is not.
func TestDiffMetricsThroughputRegression(t *testing.T) {
	th := DefaultDiffThresholds()

	cur := baseMetrics()
	cur["rows_per_sec/ae"] = 1000 * (1 - th.ThroughputDrop) * 0.9 // past the allowed drop
	rep := DiffMetrics(baseMetrics(), cur, th)
	if rep.Regressions != 1 {
		t.Fatalf("injected throughput drop: %d regressions, want 1: %+v", rep.Regressions, rep.Entries)
	}
	var flagged *DiffEntry
	for i := range rep.Entries {
		if rep.Entries[i].Regressed {
			flagged = &rep.Entries[i]
		}
	}
	if flagged == nil || flagged.Metric != "rows_per_sec/ae" {
		t.Fatalf("wrong metric flagged: %+v", flagged)
	}

	cur = baseMetrics()
	cur["rows_per_sec/ae"] = 1000 * (1 - th.ThroughputDrop) * 1.1 // within the allowed drop
	if rep := DiffMetrics(baseMetrics(), cur, th); rep.Regressions != 0 {
		t.Fatalf("tolerated drop flagged: %+v", rep.Entries)
	}

	// Throughput going up is never a regression.
	cur = baseMetrics()
	cur["rows_per_sec/ae"] = 5000
	if rep := DiffMetrics(baseMetrics(), cur, th); rep.Regressions != 0 {
		t.Fatalf("improvement flagged: %+v", rep.Entries)
	}
}

// TestDiffMetricsPerClassGates checks each remaining metric class's gate:
// alloc growth (absolute), wire/loss growth (fractional), step-tail growth,
// and phase time staying informational until a threshold is set.
func TestDiffMetricsPerClassGates(t *testing.T) {
	th := DefaultDiffThresholds()
	cases := []struct {
		metric string
		value  float64
		flag   bool
	}{
		{"allocs_per_step/ae", 4 + th.AllocGrowth + 1, true},
		{"allocs_per_step/ae", 4 + th.AllocGrowth, false},
		{"alloc_bytes_per_step/ae", 4096*(1+th.AllocBytesGrowth) + 100, true},
		{"wire_bytes/latents", 100_000*(1+th.WireGrowth) + 300, true},
		{"wire_bytes/latents", 100_000 * (1 + th.WireGrowth/2), false},
		{"wire_enc_bytes/f32/latents", 50_000*(1+th.WireGrowth) + 300, true},
		{"wire_enc_bytes/f32/latents", 50_000 * (1 + th.WireGrowth/2), false},
		{"wire_err_max/f32/latents", 2e-7 * (1 + th.WireErrGrowth) * 1.1, true},
		{"wire_err_max/f32/latents", 2e-7 * (1 + th.WireErrGrowth/2), false},
		// A lossless codec turning lossy is a regression even from a zero
		// baseline; float noise below the absolute floor is not.
		{"wire_err_max/f64/grad-up", 1e-6, true},
		{"wire_err_max/f64/grad-up", 1e-13, false},
		{"loss/diffusion-train", 0.85 * (1 + th.LossGrowth) * 1.05, true},
		{"loss/diffusion-train", 0.85, false},
		{"step_p95_sec/ae", 0.010 * (1 + th.ThroughputDrop) * 1.1, true},
		{"phase_sec/diffusion-train", 100, false}, // informational by default
	}
	for _, c := range cases {
		cur := baseMetrics()
		cur[c.metric] = c.value
		rep := DiffMetrics(baseMetrics(), cur, th)
		if got := rep.Regressions > 0; got != c.flag {
			t.Errorf("%s=%v: regressed=%v, want %v", c.metric, c.value, got, c.flag)
		}
	}

	// Negative losses (autoencoder NLL) measure growth against |base|:
	// bit-identical values must never flag, and real growth still does.
	negCases := []struct {
		base, cur float64
		flag      bool
	}{
		{-3.5, -3.5, false},
		{-3.5, -3.5 + 3.5*th.LossGrowth/2, false},
		{-3.5, -3.5 + 3.5*th.LossGrowth*1.1, true},
	}
	for _, c := range negCases {
		base, cur := baseMetrics(), baseMetrics()
		base["loss/ae-train"] = c.base
		cur["loss/ae-train"] = c.cur
		rep := DiffMetrics(base, cur, th)
		if got := rep.Regressions > 0; got != c.flag {
			t.Errorf("negative loss %v -> %v: regressed=%v, want %v", c.base, c.cur, got, c.flag)
		}
	}

	// Opting into the phase gate flags wall-time growth.
	th.PhaseGrowth = 0.5
	cur := baseMetrics()
	cur["phase_sec/diffusion-train"] = 4.0
	if rep := DiffMetrics(baseMetrics(), cur, th); rep.Regressions != 1 {
		t.Fatalf("phase gate with threshold set: %d regressions, want 1", rep.Regressions)
	}
}

// TestBenchMetricsWireFlattening checks that the snapshot's wire section
// flattens into the keys the diff gate compares.
func TestBenchMetricsWireFlattening(t *testing.T) {
	b := NewBenchSnapshot("fig10x", "fast")
	b.Wire = map[string]WireCodecStats{
		"f32/latents": {Messages: 3, RawBytes: 3000, Bytes: 1560, MaxErr: 2e-7, MeanErr: 4e-8},
	}
	m := BenchMetrics(b)
	if m["wire_enc_bytes/f32/latents"] != 1560 {
		t.Fatalf("wire_enc_bytes = %v", m["wire_enc_bytes/f32/latents"])
	}
	if m["wire_err_max/f32/latents"] != 2e-7 {
		t.Fatalf("wire_err_max = %v", m["wire_err_max/f32/latents"])
	}
}

// TestDiffMetricsNewAndMissing checks that metrics present on only one side
// are reported but never gate.
func TestDiffMetricsNewAndMissing(t *testing.T) {
	base := baseMetrics()
	cur := baseMetrics()
	delete(cur, "loss/diffusion-train")
	cur["rows_per_sec/gan"] = 123

	rep := DiffMetrics(base, cur, DefaultDiffThresholds())
	if rep.Regressions != 0 {
		t.Fatalf("new/missing metrics gated: %+v", rep.Entries)
	}
	notes := map[string]string{}
	for _, e := range rep.Entries {
		notes[e.Metric] = e.Note
	}
	if notes["loss/diffusion-train"] != "missing" || notes["rows_per_sec/gan"] != "new" {
		t.Fatalf("notes = %v", notes)
	}
}

// TestEventMetrics checks the event-stream flattening: last train loss wins,
// throughput averages, cumulative wire counters keep their max, phase
// durations and attr losses land under their keys.
func TestEventMetrics(t *testing.T) {
	events := []map[string]any{
		{"type": "run-start"},
		{"type": "train", "stage": "ae", "loss": 3.0, "rows_per_sec": 100.0},
		{"type": "train", "stage": "ae", "loss": 2.0, "rows_per_sec": 300.0},
		{"type": "phase", "name": "ae-train", "dur_sec": 1.5,
			"bus_bytes_by_kind": map[string]any{"latents": 500.0}},
		{"type": "phase", "name": "diffusion-train", "dur_sec": 2.5,
			"attrs":             map[string]any{"loss": 0.9},
			"bus_bytes_by_kind": map[string]any{"latents": 800.0}},
	}
	m := EventMetrics(events)
	if m["loss/ae"] != 2.0 {
		t.Errorf("loss/ae = %v, want the last value 2.0", m["loss/ae"])
	}
	if m["rows_per_sec/ae"] != 200.0 {
		t.Errorf("rows_per_sec/ae = %v, want the mean 200", m["rows_per_sec/ae"])
	}
	if m["phase_sec/diffusion-train"] != 2.5 || m["loss/diffusion-train"] != 0.9 {
		t.Errorf("phase metrics = %v", m)
	}
	if m["wire_bytes/latents"] != 800.0 {
		t.Errorf("wire_bytes/latents = %v, want the cumulative max 800", m["wire_bytes/latents"])
	}
}

// TestDiffReportWriteTable checks the rendered delta table: header, a
// REGRESSION row, and the summary footer.
func TestDiffReportWriteTable(t *testing.T) {
	cur := baseMetrics()
	cur["wire_bytes/latents"] = 500_000
	rep := DiffMetrics(baseMetrics(), cur, DefaultDiffThresholds())

	var b strings.Builder
	if err := rep.WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"METRIC", "REGRESSION: wire bytes grew", "1 regression(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
