package experiments

import (
	"fmt"
	"io"

	"silofuse/internal/core"
	"silofuse/internal/metrics"
)

// AblationResult is one design-choice variant's quality scores.
type AblationResult struct {
	Variant     string
	Resemblance Stat
	Utility     Stat
}

// Ablations measures the quality impact of SiloFuse's design choices,
// each toggled in isolation against the default configuration:
//
//   - no-whitening: skip the coordinator's latent standardisation (the
//     diffusion prior then mismatches the latent scale);
//   - mean-decode: take decoder means/arg-maxes instead of sampling the
//     output heads;
//   - cosine-schedule: cosine instead of linear variance schedule;
//   - ema: sample with exponentially averaged backbone weights;
//   - steps-5: 5 instead of 25 inference denoising steps.
//
// The default dataset is cardio (one of the paper's showcase datasets).
func (c Config) Ablations() ([]AblationResult, error) {
	cc := c
	if cc.Datasets == nil {
		cc.Datasets = []string{"cardio"}
	}
	specs, err := cc.datasets()
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name  string
		apply func(*core.Options)
	}{
		{"baseline", func(*core.Options) {}},
		{"no-whitening", func(o *core.Options) { o.DisableLatentWhitening = true }},
		{"mean-decode", func(o *core.Options) { o.DecodeSampling = false }},
		{"cosine-schedule", func(o *core.Options) { o.CosineSchedule = true }},
		{"ema-0.995", func(o *core.Options) { o.EMADecay = 0.995 }},
		{"steps-5", func(o *core.Options) { o.SynthSteps = 5 }},
	}
	var out []AblationResult
	for _, spec := range specs {
		train, test := cc.prepare(spec)
		for _, v := range variants {
			var res, util []float64
			for trial := 0; trial < cc.Trials; trial++ {
				opts := cc.Opts
				opts.Seed = cc.Seed + int64(trial)*TrialSeedStride
				v.apply(&opts)
				m := core.NewSiloFuse(opts)
				if err := m.Fit(train); err != nil {
					return nil, fmt.Errorf("ablation %s: %w", v.name, err)
				}
				synth, err := m.Sample(cc.SynthRows)
				if err != nil {
					return nil, err
				}
				r, err := metrics.Resemblance(train, synth, cc.ResCfg)
				if err != nil {
					return nil, err
				}
				u, err := metrics.Utility(train, synth, test, cc.UtilCfg)
				if err != nil {
					return nil, err
				}
				res = append(res, r.Score)
				util = append(util, u.Score)
			}
			name := v.name
			if len(specs) > 1 {
				name = spec.Name + "/" + v.name
			}
			out = append(out, AblationResult{Variant: name, Resemblance: statOf(res), Utility: statOf(util)})
		}
	}
	return out, nil
}

// PrintAblations renders the ablation study.
func PrintAblations(w io.Writer, rows []AblationResult) {
	fmt.Fprintln(w, "Ablations: SiloFuse design choices (resemblance / utility)")
	fmt.Fprintf(w, "%-24s %14s %14s\n", "Variant", "Resemblance", "Utility")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %14s %14s\n", r.Variant, r.Resemblance, r.Utility)
	}
}
