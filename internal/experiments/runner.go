package experiments

import (
	"fmt"
	"math/rand"

	"silofuse/internal/core"
	"silofuse/internal/tabular"
)

// newSplitRng derives the train/test split randomness.
func newSplitRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed * 31)) }

// fitAndSample trains one model instance (seeded per trial) and draws the
// configured number of synthetic rows.
func (c Config) fitAndSample(model string, train *tabular.Table, trial int) (core.Synthesizer, *tabular.Table, error) {
	opts := c.Opts
	opts.Seed = c.Seed + int64(trial)*TrialSeedStride
	m, err := core.New(model, opts)
	if err != nil {
		return nil, nil, err
	}
	if err := m.Fit(train); err != nil {
		return nil, nil, fmt.Errorf("experiments: fit %s: %w", model, err)
	}
	synth, err := m.Sample(c.SynthRows)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: sample %s: %w", model, err)
	}
	return m, synth, nil
}

// Grid holds a (dataset, model) score matrix with per-cell trial stats.
type Grid struct {
	Title    string
	Datasets []string
	Models   []string // display names
	Cells    map[string]map[string]Stat
}

// Cell returns the stat for (dataset, model display name).
func (g *Grid) Cell(dataset, model string) Stat { return g.Cells[dataset][model] }

// PPD returns the paper's "percentage point difference" row: the best
// SiloFuse-vs-best-GAN margin per dataset.
func (g *Grid) PPD(dataset string) float64 {
	sf := g.Cells[dataset]["SiloFuse"].Mean
	bestGAN := 0.0
	for _, m := range []string{"GAN(conv)", "GAN(linear)"} {
		if s, ok := g.Cells[dataset][m]; ok && s.Mean > bestGAN {
			bestGAN = s.Mean
		}
	}
	return sf - bestGAN
}
