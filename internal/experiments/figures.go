package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"silofuse/internal/core"
	"silofuse/internal/metrics"
)

// Figure10Series is one dataset's communication-cost comparison: total
// bytes transferred for SiloFuse (stacked) vs E2EDistr (end-to-end) at each
// iteration count. SiloFuse bytes come from a real measured run and are
// iteration-invariant by construction; E2EDistr bytes are measured per
// iteration on a real short run (every iteration moves identical sizes) and
// scaled exactly to the paper's iteration counts.
type Figure10Series struct {
	Dataset       string
	Iterations    []int
	SiloFuseBytes []int64
	E2EDistrBytes []int64
	// MeasuredE2EIters and MeasuredE2EBytes document the actual run used to
	// establish the per-iteration cost.
	MeasuredE2EIters int
	MeasuredE2EBytes int64
}

// Figure10 reproduces the communication experiment on Abalone and Intrusion
// with iteration counts 50k / 500k / 5M (paper setup: 4 clients, equal
// feature partitions).
func (c Config) Figure10() ([]Figure10Series, error) {
	cc := c
	if cc.Datasets == nil {
		cc.Datasets = []string{"abalone", "intrusion"}
	}
	iterCounts := []int{50_000, 500_000, 5_000_000}
	specs, err := cc.datasets()
	if err != nil {
		return nil, err
	}
	var out []Figure10Series
	for _, spec := range specs {
		train, _ := cc.prepare(spec)

		// SiloFuse: run stacked training for real, count bytes. The count is
		// independent of AEIters/DiffIters (proved by the silo tests), so one
		// run covers all iteration counts.
		sfOpts := cc.Opts
		sfOpts.AEIters = 20
		sfOpts.DiffIters = 20
		sf := core.NewSiloFuse(sfOpts)
		if err := sf.Fit(train); err != nil {
			return nil, err
		}
		sfBytes := sf.CommStats().Bytes

		// E2EDistr: measure a short real run, derive the exact per-iteration
		// cost, scale.
		const measured = 20
		e2eOpts := cc.Opts
		e2eOpts.AEIters = measured
		e2eOpts.DiffIters = 0
		e2e := core.NewE2EDistr(e2eOpts)
		if err := e2e.Fit(train); err != nil {
			return nil, err
		}
		e2eBytes := e2e.CommStats().Bytes
		if e2eBytes%measured != 0 {
			return nil, fmt.Errorf("experiments: E2E bytes %d not iteration-uniform", e2eBytes)
		}
		perIter := e2eBytes / measured

		series := Figure10Series{
			Dataset:          spec.Name,
			Iterations:       iterCounts,
			MeasuredE2EIters: measured,
			MeasuredE2EBytes: e2eBytes,
		}
		for _, it := range iterCounts {
			series.SiloFuseBytes = append(series.SiloFuseBytes, sfBytes)
			series.E2EDistrBytes = append(series.E2EDistrBytes, perIter*int64(it))
		}
		out = append(out, series)
	}
	return out, nil
}

// PrintFigure10 renders the communication series.
func PrintFigure10(w io.Writer, series []Figure10Series) {
	fmt.Fprintln(w, "Figure 10: bytes communicated during training (4 clients)")
	for _, s := range series {
		fmt.Fprintf(w, "\n%s (E2EDistr measured: %d iters -> %s)\n", s.Dataset, s.MeasuredE2EIters, humanBytes(s.MeasuredE2EBytes))
		fmt.Fprintf(w, "%12s %14s %14s\n", "iterations", "SiloFuse", "E2EDistr")
		for i, it := range s.Iterations {
			fmt.Fprintf(w, "%12d %14s %14s\n", it, humanBytes(s.SiloFuseBytes[i]), humanBytes(s.E2EDistrBytes[i]))
		}
	}
}

func humanBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// Figure11Point is one robustness configuration's scores.
type Figure11Point struct {
	Dataset     string
	Clients     int
	Permuted    bool
	Resemblance Stat
	Utility     Stat
}

// Figure11 reproduces the robustness experiment: SiloFuse resemblance and
// utility under 4 vs 8 clients and default vs permuted feature assignment
// (the paper permutes with seed 12343) on Heloc, Loan and Churn.
func (c Config) Figure11() ([]Figure11Point, error) {
	cc := c
	if cc.Datasets == nil {
		cc.Datasets = []string{"heloc", "loan", "churn"}
	}
	specs, err := cc.datasets()
	if err != nil {
		return nil, err
	}
	var out []Figure11Point
	for _, spec := range specs {
		train, test := cc.prepare(spec)
		for _, clients := range []int{4, 8} {
			for _, permuted := range []bool{false, true} {
				var perm []int
				if permuted {
					perm = train.Schema.RandomPermutation(rand.New(rand.NewSource(PermutationSeed)))
				}
				var res, util []float64
				for trial := 0; trial < cc.Trials; trial++ {
					opts := cc.Opts
					opts.Clients = clients
					opts.Permutation = perm
					opts.Seed = cc.Seed + int64(trial)*TrialSeedStride
					m := core.NewSiloFuse(opts)
					if err := m.Fit(train); err != nil {
						return nil, err
					}
					synth, err := m.Sample(cc.SynthRows)
					if err != nil {
						return nil, err
					}
					r, err := metrics.Resemblance(train, synth, cc.ResCfg)
					if err != nil {
						return nil, err
					}
					u, err := metrics.Utility(train, synth, test, cc.UtilCfg)
					if err != nil {
						return nil, err
					}
					res = append(res, r.Score)
					util = append(util, u.Score)
				}
				out = append(out, Figure11Point{
					Dataset: spec.Name, Clients: clients, Permuted: permuted,
					Resemblance: statOf(res), Utility: statOf(util),
				})
			}
		}
	}
	return out, nil
}

// PrintFigure11 renders the robustness grid.
func PrintFigure11(w io.Writer, points []Figure11Point) {
	fmt.Fprintln(w, "Figure 11: SiloFuse robustness to clients and feature permutation")
	fmt.Fprintf(w, "%-10s %8s %10s %14s %14s\n", "Dataset", "Clients", "Partition", "Resemblance", "Utility")
	for _, p := range points {
		part := "default"
		if p.Permuted {
			part = "permuted"
		}
		fmt.Fprintf(w, "%-10s %8d %10s %14s %14s\n", p.Dataset, p.Clients, part, p.Resemblance, p.Utility)
	}
}
