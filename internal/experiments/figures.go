package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"silofuse/internal/core"
	"silofuse/internal/metrics"
	"silofuse/internal/obs"
)

// Figure10Series is one dataset's communication-cost comparison: total
// bytes transferred for SiloFuse (stacked) vs E2EDistr (end-to-end) at each
// iteration count. SiloFuse bytes come from a real measured run and are
// iteration-invariant by construction; E2EDistr bytes are measured per
// iteration on a real short run (every iteration moves identical sizes) and
// scaled exactly to the paper's iteration counts.
type Figure10Series struct {
	Dataset       string
	Iterations    []int
	SiloFuseBytes []int64
	E2EDistrBytes []int64
	// MeasuredE2EIters and MeasuredE2EBytes document the actual run used to
	// establish the per-iteration cost.
	MeasuredE2EIters int
	MeasuredE2EBytes int64
}

// Figure10 reproduces the communication experiment on Abalone and Intrusion
// with iteration counts 50k / 500k / 5M (paper setup: 4 clients, equal
// feature partitions).
func (c Config) Figure10() ([]Figure10Series, error) {
	cc := c
	if cc.Datasets == nil {
		cc.Datasets = []string{"abalone", "intrusion"}
	}
	iterCounts := []int{50_000, 500_000, 5_000_000}
	specs, err := cc.datasets()
	if err != nil {
		return nil, err
	}
	var out []Figure10Series
	for _, spec := range specs {
		train, _ := cc.prepare(spec)

		// SiloFuse: run stacked training for real, count bytes. The count is
		// independent of AEIters/DiffIters (proved by the silo tests), so one
		// run covers all iteration counts.
		sfOpts := cc.Opts
		sfOpts.AEIters = 20
		sfOpts.DiffIters = 20
		sf := core.NewSiloFuse(sfOpts)
		if err := sf.Fit(train); err != nil {
			return nil, err
		}
		sfBytes := sf.CommStats().Bytes

		// E2EDistr: measure a short real run, derive the exact per-iteration
		// cost, scale.
		const measured = 20
		e2eOpts := cc.Opts
		e2eOpts.AEIters = measured
		e2eOpts.DiffIters = 0
		e2e := core.NewE2EDistr(e2eOpts)
		if err := e2e.Fit(train); err != nil {
			return nil, err
		}
		e2eBytes := e2e.CommStats().Bytes
		if e2eBytes%measured != 0 {
			return nil, fmt.Errorf("experiments: E2E bytes %d not iteration-uniform", e2eBytes)
		}
		perIter := e2eBytes / measured

		series := Figure10Series{
			Dataset:          spec.Name,
			Iterations:       iterCounts,
			MeasuredE2EIters: measured,
			MeasuredE2EBytes: e2eBytes,
		}
		for _, it := range iterCounts {
			series.SiloFuseBytes = append(series.SiloFuseBytes, sfBytes)
			series.E2EDistrBytes = append(series.E2EDistrBytes, perIter*int64(it))
		}
		out = append(out, series)
	}
	return out, nil
}

// PrintFigure10 renders the communication series.
func PrintFigure10(w io.Writer, series []Figure10Series) {
	fmt.Fprintln(w, "Figure 10: bytes communicated during training (4 clients)")
	for _, s := range series {
		fmt.Fprintf(w, "\n%s (E2EDistr measured: %d iters -> %s)\n", s.Dataset, s.MeasuredE2EIters, humanBytes(s.MeasuredE2EBytes))
		fmt.Fprintf(w, "%12s %14s %14s\n", "iterations", "SiloFuse", "E2EDistr")
		for i, it := range s.Iterations {
			fmt.Fprintf(w, "%12d %14s %14s\n", it, humanBytes(s.SiloFuseBytes[i]), humanBytes(s.E2EDistrBytes[i]))
		}
	}
}

func humanBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// Figure10XRow is one (dataset, model, codec) cell of the bytes-vs-error
// sweep: how many bytes the precision tier moved for the codec-framed
// tensor kinds, against the modelled raw-f64 cost, and the reconstruction
// error it introduced. "none" rows are the gob baseline the other codecs
// are compared to.
type Figure10XRow struct {
	Dataset string
	Model   string // "silofuse" (latents + synth path) or "e2edistr" (activations + gradients)
	Codec   string
	// Messages / RawBytes / EncBytes aggregate the codec-framed tensor
	// kinds only; TotalBytes counts every transport byte of the run.
	Messages   int64
	RawBytes   int64
	EncBytes   int64
	TotalBytes int64
	MaxErr     float64 // worst per-element reconstruction error across kinds
	MeanErr    float64 // worst per-kind mean reconstruction error
}

// Figure10X sweeps the wire codecs over real short runs of both
// distributed models and reports bytes vs reconstruction error per codec:
// SiloFuse exercises the latent upload and synthesis path, E2EDistr the
// activation/gradient exchange. Every run is deterministic, so the numbers
// are comparable across invocations and gateable by the bench baseline.
func (c Config) Figure10X() ([]Figure10XRow, error) {
	cc := c
	if cc.Datasets == nil {
		cc.Datasets = []string{"abalone"}
	}
	specs, err := cc.datasets()
	if err != nil {
		return nil, err
	}
	synthRows := cc.SynthRows
	if synthRows > 512 {
		synthRows = 512
	}
	var out []Figure10XRow
	for _, spec := range specs {
		train, _ := cc.prepare(spec)
		for _, codecName := range []string{"none", "f64", "f32", "q8"} {
			// SiloFuse: stacked fit plus a synthesis pass, so both the
			// latent upload and the synth-latent return leg are framed.
			sfOpts := cc.Opts
			sfOpts.AEIters = 20
			sfOpts.DiffIters = 20
			sfOpts.WireCodec = codecName
			sfRec := obs.NewRecorder()
			sfOpts.Recorder = sfRec
			sf := core.NewSiloFuse(sfOpts)
			if err := sf.Fit(train); err != nil {
				return nil, err
			}
			if _, err := sf.Sample(synthRows); err != nil {
				return nil, err
			}
			out = append(out, figure10xRow(spec.Name, "silofuse", codecName, sf.CommStats().Bytes, sfRec, c.Opts.Recorder))

			// E2EDistr: the split forward/backward moves activations and
			// gradients every iteration.
			e2eOpts := cc.Opts
			e2eOpts.AEIters = 20
			e2eOpts.DiffIters = 0
			e2eOpts.WireCodec = codecName
			e2eRec := obs.NewRecorder()
			e2eOpts.Recorder = e2eRec
			e2e := core.NewE2EDistr(e2eOpts)
			if err := e2e.Fit(train); err != nil {
				return nil, err
			}
			out = append(out, figure10xRow(spec.Name, "e2edistr", codecName, e2e.CommStats().Bytes, e2eRec, c.Opts.Recorder))
		}
	}
	return out, nil
}

// figure10xRow aggregates one run's wire_* metrics into a sweep row and
// replays the per-kind accounting into the invocation's main recorder (if
// any), so the sweep's numbers reach the bench snapshot and manifest.
func figure10xRow(dataset, model, codecName string, total int64, rec, main *obs.Recorder) Figure10XRow {
	row := Figure10XRow{Dataset: dataset, Model: model, Codec: codecName, TotalBytes: total}
	wire := parseWireMetrics(rec.Snapshot())
	replayWireMetrics(main, wire)
	for _, st := range wire {
		row.Messages += st.Messages
		row.RawBytes += st.RawBytes
		row.EncBytes += st.Bytes
		if st.MaxErr > row.MaxErr {
			row.MaxErr = st.MaxErr
		}
		if st.MeanErr > row.MeanErr {
			row.MeanErr = st.MeanErr
		}
	}
	return row
}

// PrintFigure10X renders the sweep with each codec's total-byte ratio
// against the gob baseline ("none", which emits no codec accounting) of the
// same dataset and model.
func PrintFigure10X(w io.Writer, rows []Figure10XRow) {
	fmt.Fprintln(w, "Figure 10x: wire codec sweep — tensor bytes vs reconstruction error")
	base := make(map[string]int64)
	for _, r := range rows {
		if r.Codec == "none" {
			base[r.Dataset+"/"+r.Model] = r.TotalBytes
		}
	}
	fmt.Fprintf(w, "%-10s %-9s %-6s %10s %12s %12s %8s %10s %10s\n",
		"Dataset", "Model", "Codec", "Messages", "TensorBytes", "TotalBytes", "vs gob", "MaxErr", "MeanErr")
	for _, r := range rows {
		ratio := "--"
		if b := base[r.Dataset+"/"+r.Model]; b > 0 && r.TotalBytes > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(b)/float64(r.TotalBytes))
		}
		fmt.Fprintf(w, "%-10s %-9s %-6s %10d %12s %12s %8s %10.2e %10.2e\n",
			r.Dataset, r.Model, r.Codec, r.Messages, humanBytes(r.EncBytes), humanBytes(r.TotalBytes), ratio, r.MaxErr, r.MeanErr)
	}
}

// Figure11Point is one robustness configuration's scores.
type Figure11Point struct {
	Dataset     string
	Clients     int
	Permuted    bool
	Resemblance Stat
	Utility     Stat
}

// Figure11 reproduces the robustness experiment: SiloFuse resemblance and
// utility under 4 vs 8 clients and default vs permuted feature assignment
// (the paper permutes with seed 12343) on Heloc, Loan and Churn.
func (c Config) Figure11() ([]Figure11Point, error) {
	cc := c
	if cc.Datasets == nil {
		cc.Datasets = []string{"heloc", "loan", "churn"}
	}
	specs, err := cc.datasets()
	if err != nil {
		return nil, err
	}
	var out []Figure11Point
	for _, spec := range specs {
		train, test := cc.prepare(spec)
		for _, clients := range []int{4, 8} {
			for _, permuted := range []bool{false, true} {
				var perm []int
				if permuted {
					perm = train.Schema.RandomPermutation(rand.New(rand.NewSource(PermutationSeed)))
				}
				var res, util []float64
				for trial := 0; trial < cc.Trials; trial++ {
					opts := cc.Opts
					opts.Clients = clients
					opts.Permutation = perm
					opts.Seed = cc.Seed + int64(trial)*TrialSeedStride
					m := core.NewSiloFuse(opts)
					if err := m.Fit(train); err != nil {
						return nil, err
					}
					synth, err := m.Sample(cc.SynthRows)
					if err != nil {
						return nil, err
					}
					r, err := metrics.Resemblance(train, synth, cc.ResCfg)
					if err != nil {
						return nil, err
					}
					u, err := metrics.Utility(train, synth, test, cc.UtilCfg)
					if err != nil {
						return nil, err
					}
					res = append(res, r.Score)
					util = append(util, u.Score)
				}
				out = append(out, Figure11Point{
					Dataset: spec.Name, Clients: clients, Permuted: permuted,
					Resemblance: statOf(res), Utility: statOf(util),
				})
			}
		}
	}
	return out, nil
}

// PrintFigure11 renders the robustness grid.
func PrintFigure11(w io.Writer, points []Figure11Point) {
	fmt.Fprintln(w, "Figure 11: SiloFuse robustness to clients and feature permutation")
	fmt.Fprintf(w, "%-10s %8s %10s %14s %14s\n", "Dataset", "Clients", "Partition", "Resemblance", "Utility")
	for _, p := range points {
		part := "default"
		if p.Permuted {
			part = "permuted"
		}
		fmt.Fprintf(w, "%-10s %8d %10s %14s %14s\n", p.Dataset, p.Clients, part, p.Resemblance, p.Utility)
	}
}
