//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"silofuse/internal/obs"
)

func TestBenchSnapshotFromRecorder(t *testing.T) {
	rec := obs.NewRecorder()
	sp := rec.StartSpan("ae-train")
	for i := 0; i < 4; i++ {
		rec.TrainStep("ae", 1.0, 25, 10*time.Millisecond)
	}
	sp.End()
	rec.TrainAllocs("ae", 4, 8, 4096)
	rec.Message("latents", 4096, time.Millisecond)
	rec.Message("synth-req", 64, time.Microsecond)

	b := NewBenchSnapshot("fig10", "fast")
	b.WallSeconds = 1.5
	b.FromRecorder(rec)

	if len(b.Phases) != 1 || b.Phases[0].Name != "ae-train" {
		t.Fatalf("phases = %+v", b.Phases)
	}
	// 4 steps x 25 rows over 4 x 10ms observed step time = 2500 rows/sec.
	rps, ok := b.RowsPerSec["ae"]
	if !ok || rps < 500 || rps > 3000 {
		t.Fatalf("ae rows/sec = %v (ok=%v), want ≈2500", rps, ok)
	}
	if b.StepSeconds["ae"].Count != 4 {
		t.Fatalf("ae step histogram = %+v", b.StepSeconds["ae"])
	}
	if b.WireBytesByKind["latents"] != 4096 || b.WireBytesByKind["synth-req"] != 64 {
		t.Fatalf("wire bytes by kind = %v", b.WireBytesByKind)
	}
	if b.WireMessages != 2 {
		t.Fatalf("wire messages = %d, want 2", b.WireMessages)
	}
	if b.Runtime.GoVersion != runtime.Version() || b.Runtime.NumCPU < 1 || b.Runtime.GOMAXPROCS < 1 {
		t.Fatalf("runtime stamp = %+v", b.Runtime)
	}
	if b.AllocsPerStep["ae"] != 2 || b.AllocBytesPerStep["ae"] != 1024 {
		t.Fatalf("alloc stats = %v / %v, want 2 allocs and 1024 bytes per step",
			b.AllocsPerStep["ae"], b.AllocBytesPerStep["ae"])
	}

	// A nil recorder leaves the snapshot unchanged.
	before := len(b.Phases)
	b.FromRecorder(nil)
	if len(b.Phases) != before {
		t.Fatal("nil recorder mutated snapshot")
	}
}

func TestBenchSnapshotWireSection(t *testing.T) {
	rec := obs.NewRecorder()
	// Two sends on one stream (counters accumulate, gauges carry the
	// caller's running aggregates) plus a hyphenated kind, which must not
	// confuse the first-underscore codec/kind split.
	rec.WireCodec("f32", "latents", 1000, 520, 1e-7, 3e-8)
	rec.WireCodec("f32", "latents", 1000, 520, 2e-7, 4e-8)
	rec.WireCodec("q8", "synth-latent", 2048, 580, 3e-3, 9e-4)

	b := NewBenchSnapshot("fig10", "fast")
	b.FromRecorder(rec)
	lat := b.Wire["f32/latents"]
	if lat.Messages != 2 || lat.RawBytes != 2000 || lat.Bytes != 1040 {
		t.Fatalf("f32/latents = %+v", lat)
	}
	if lat.MaxErr != 2e-7 || lat.MeanErr != 4e-8 {
		t.Fatalf("f32/latents errors = %+v", lat)
	}
	syn := b.Wire["q8/synth-latent"]
	if syn.Messages != 1 || syn.Bytes != 580 || syn.MaxErr != 3e-3 {
		t.Fatalf("q8/synth-latent = %+v", syn)
	}

	// Merging a second party's recorder sums counts and keeps the worst
	// error, so the snapshot reflects fleet totals.
	rec2 := obs.NewRecorder()
	rec2.WireCodec("f32", "latents", 1000, 520, 5e-7, 1e-8)
	b.FromRecorder(rec2)
	lat = b.Wire["f32/latents"]
	if lat.Messages != 3 || lat.Bytes != 1560 || lat.MaxErr != 5e-7 || lat.MeanErr != 4e-8 {
		t.Fatalf("merged f32/latents = %+v", lat)
	}

	// A recorder without wire metrics leaves the section alone, and a
	// snapshot that never saw a codec has no section at all.
	b.FromRecorder(obs.NewRecorder())
	if len(b.Wire) != 2 {
		t.Fatalf("wire section grew on empty recorder: %v", b.Wire)
	}
	plain := NewBenchSnapshot("fig10", "fast")
	plain.FromRecorder(obs.NewRecorder())
	if plain.Wire != nil {
		t.Fatalf("unexpected wire section: %v", plain.Wire)
	}
}

func TestBenchSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "BENCH_silofuse.json")
	b := NewBenchSnapshot("all", "fast")
	b.WallSeconds = 2.25
	b.WireMessages = 9
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Exp != "all" || got.Scale != "fast" || got.WallSeconds != 2.25 || got.WireMessages != 9 {
		t.Fatalf("round trip = %+v", got)
	}
	// The file uses snake_case keys and ends with a newline.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"wall_seconds"`) || !strings.HasSuffix(string(data), "\n") {
		t.Fatalf("snapshot file format:\n%s", data)
	}
}

func TestBenchSnapshotValidation(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, v map[string]any) string {
		t.Helper()
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	now := time.Now().UTC().Format(time.RFC3339)
	valid := map[string]any{
		"created_at": now, "exp": "fig10", "scale": "fast", "wall_seconds": 1.0,
		"runtime": map[string]any{"go_version": "go1.22"},
	}
	if _, err := ReadBenchSnapshot(write("ok.json", valid)); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	for field, wantErr := range map[string]string{
		"created_at":   "created_at",
		"exp":          "exp",
		"runtime":      "go_version",
		"wall_seconds": "wall_seconds",
	} {
		bad := make(map[string]any, len(valid))
		for k, v := range valid {
			if k != field {
				bad[k] = v
			}
		}
		_, err := ReadBenchSnapshot(write("bad.json", bad))
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("missing %s: err = %v, want mention of %s", field, err, wantErr)
		}
	}
	if _, err := ReadBenchSnapshot(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("absent file should error")
	}
	notJSON := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(notJSON, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchSnapshot(notJSON); err == nil {
		t.Fatal("corrupt file should error")
	}
}

func TestManifestRuntimeStamp(t *testing.T) {
	m := NewManifest("run", 1)
	if m.Runtime.GoVersion != runtime.Version() || m.Runtime.GOOS != runtime.GOOS ||
		m.Runtime.GOARCH != runtime.GOARCH || m.Runtime.NumCPU != runtime.NumCPU() ||
		m.Runtime.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Fatalf("manifest runtime = %+v", m.Runtime)
	}
}
