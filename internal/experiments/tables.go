package experiments

import (
	"fmt"
	"io"
	"strings"

	"silofuse/internal/core"
	"silofuse/internal/metrics"
	"silofuse/internal/privacy"
	"silofuse/internal/tabular"
)

// TableIIRow is one dataset-statistics row of Table II.
type TableIIRow struct {
	Name     string
	Rows     int
	Cat, Num int
	Before   int
	After    int
	Increase float64
}

// TableII reproduces the dataset statistics table (schema sizes and the
// one-hot expansion factor).
func (c Config) TableII() ([]TableIIRow, error) {
	specs, err := c.datasets()
	if err != nil {
		return nil, err
	}
	out := make([]TableIIRow, 0, len(specs))
	for _, s := range specs {
		sch := s.Schema()
		out = append(out, TableIIRow{
			Name:     s.Name,
			Rows:     s.PaperRows,
			Cat:      len(s.CatCards),
			Num:      s.NumCols,
			Before:   sch.NumColumns(),
			After:    sch.OneHotWidth(),
			Increase: float64(sch.OneHotWidth()) / float64(sch.NumColumns()),
		})
	}
	return out, nil
}

// PrintTableII renders Table II in the paper's layout.
func PrintTableII(w io.Writer, rows []TableIIRow) {
	fmt.Fprintf(w, "%-10s %8s %6s %6s %6s %6s %8s\n", "Dataset", "#Rows", "#Cat", "#Num", "#Bef", "#Aft", "Incr")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %6d %6d %6d %6d %7.2fx\n", r.Name, r.Rows, r.Cat, r.Num, r.Before, r.After, r.Increase)
	}
}

// TableIII computes the resemblance grid (models × datasets, mean±std over
// trials) of Table III.
func (c Config) TableIII() (*Grid, error) {
	return c.scoreGrid("Table III: Resemblance", func(trial int, model string, d *preparedTables) (float64, error) {
		_, synth, err := c.fitAndSample(model, d.train, trial)
		if err != nil {
			return 0, err
		}
		rep, err := metrics.Resemblance(d.train, synth, c.ResCfg)
		if err != nil {
			return 0, err
		}
		return rep.Score, nil
	})
}

// TableIV computes the utility grid of Table IV.
func (c Config) TableIV() (*Grid, error) {
	return c.scoreGrid("Table IV: Utility", func(trial int, model string, d *preparedTables) (float64, error) {
		_, synth, err := c.fitAndSample(model, d.train, trial)
		if err != nil {
			return 0, err
		}
		rep, err := metrics.Utility(d.train, synth, d.test, c.UtilCfg)
		if err != nil {
			return 0, err
		}
		return rep.Score, nil
	})
}

// Quality computes Tables III (resemblance) and IV (utility) in a single
// pass: each (dataset, model, trial) fit serves both metrics, halving the
// compute relative to running the tables separately.
func (c Config) Quality() (resemblance, utility *Grid, err error) {
	specs, err := c.datasets()
	if err != nil {
		return nil, nil, err
	}
	resemblance = &Grid{Title: "Table III: Resemblance", Cells: make(map[string]map[string]Stat)}
	utility = &Grid{Title: "Table IV: Utility", Cells: make(map[string]map[string]Stat)}
	for _, spec := range specs {
		resemblance.Datasets = append(resemblance.Datasets, spec.Name)
		utility.Datasets = append(utility.Datasets, spec.Name)
	}
	for _, spec := range specs {
		train, test := c.prepare(spec)
		resemblance.Cells[spec.Name] = make(map[string]Stat)
		utility.Cells[spec.Name] = make(map[string]Stat)
		for _, model := range c.models() {
			var resVals, utilVals []float64
			display := ""
			for trial := 0; trial < c.Trials; trial++ {
				m, synth, err := c.fitAndSample(model, train, trial)
				if err != nil {
					return nil, nil, fmt.Errorf("%s / %s: %w", spec.Name, model, err)
				}
				display = m.Name()
				r, err := metrics.Resemblance(train, synth, c.ResCfg)
				if err != nil {
					return nil, nil, err
				}
				u, err := metrics.Utility(train, synth, test, c.UtilCfg)
				if err != nil {
					return nil, nil, err
				}
				resVals = append(resVals, r.Score)
				utilVals = append(utilVals, u.Score)
			}
			resemblance.Cells[spec.Name][display] = statOf(resVals)
			utility.Cells[spec.Name][display] = statOf(utilVals)
			if !contains(resemblance.Models, display) {
				resemblance.Models = append(resemblance.Models, display)
				utility.Models = append(utility.Models, display)
			}
		}
	}
	return resemblance, utility, nil
}

// TableVI computes the privacy grid of Table VI for the top three models
// (TabDDPM, LatentDiff, SiloFuse) unless the config names others.
func (c Config) TableVI() (*Grid, error) {
	cc := c
	if cc.Models == nil {
		cc.Models = []string{"tabddpm", "latentdiff", "silofuse"}
	}
	return cc.scoreGrid("Table VI: Privacy", func(trial int, model string, d *preparedTables) (float64, error) {
		_, synth, err := cc.fitAndSample(model, d.train, trial)
		if err != nil {
			return 0, err
		}
		rep, err := privacy.Evaluate(d.train, synth, cc.PrivCfg)
		if err != nil {
			return 0, err
		}
		return rep.Score, nil
	})
}

// preparedTables bundles a dataset's train/test split.
type preparedTables struct {
	name        string
	train, test *tabular.Table
}

// scoreGrid runs fn for every (dataset, model, trial) cell.
func (c Config) scoreGrid(title string, fn func(trial int, model string, d *preparedTables) (float64, error)) (*Grid, error) {
	specs, err := c.datasets()
	if err != nil {
		return nil, err
	}
	grid := &Grid{Title: title, Cells: make(map[string]map[string]Stat)}
	for _, spec := range specs {
		grid.Datasets = append(grid.Datasets, spec.Name)
	}
	modelNames := c.models()
	for _, spec := range specs {
		train, test := c.prepare(spec)
		d := &preparedTables{name: spec.Name, train: train, test: test}
		grid.Cells[spec.Name] = make(map[string]Stat)
		for _, model := range modelNames {
			vals := make([]float64, 0, c.Trials)
			display := ""
			for trial := 0; trial < c.Trials; trial++ {
				v, err := fn(trial, model, d)
				if err != nil {
					return nil, fmt.Errorf("%s / %s: %w", spec.Name, model, err)
				}
				vals = append(vals, v)
				if display == "" {
					m, _ := core.New(model, c.Opts)
					display = m.Name()
				}
			}
			grid.Cells[spec.Name][display] = statOf(vals)
			if !contains(grid.Models, display) {
				grid.Models = append(grid.Models, display)
			}
		}
	}
	return grid, nil
}

// PrintGrid renders a grid in the paper's models-as-rows layout, including
// the PPD (SiloFuse vs best GAN) row when both are present.
func PrintGrid(w io.Writer, g *Grid) {
	fmt.Fprintln(w, g.Title)
	fmt.Fprintf(w, "%-12s", "Model")
	for _, d := range g.Datasets {
		fmt.Fprintf(w, " %14s", d)
	}
	fmt.Fprintln(w)
	for _, m := range g.Models {
		fmt.Fprintf(w, "%-12s", m)
		for _, d := range g.Datasets {
			fmt.Fprintf(w, " %14s", g.Cells[d][m])
		}
		fmt.Fprintln(w)
	}
	if contains(g.Models, "SiloFuse") && (contains(g.Models, "GAN(conv)") || contains(g.Models, "GAN(linear)")) {
		fmt.Fprintf(w, "%-12s", "PPD(vs GAN)")
		for _, d := range g.Datasets {
			fmt.Fprintf(w, " %14.1f", g.PPD(d))
		}
		fmt.Fprintln(w)
	}
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// TableVCell is one correlation-difference analysis of Table V.
type TableVCell struct {
	Dataset  string
	Model    string
	MeanDiff float64
	HeatMap  string // ASCII rendering of the |Δassociation| matrix
}

// TableV computes the correlation-difference matrices for the paper's two
// showcase datasets (Cardio and Intrusion) and top three models.
func (c Config) TableV() ([]TableVCell, error) {
	cc := c
	if cc.Datasets == nil {
		cc.Datasets = []string{"cardio", "intrusion"}
	}
	if cc.Models == nil {
		cc.Models = []string{"silofuse", "latentdiff", "tabddpm"}
	}
	specs, err := cc.datasets()
	if err != nil {
		return nil, err
	}
	var out []TableVCell
	for _, spec := range specs {
		train, _ := cc.prepare(spec)
		for _, model := range cc.Models {
			m, synth, err := cc.fitAndSample(model, train, 0)
			if err != nil {
				return nil, err
			}
			diff, mean := metrics.AssociationDifference(train, synth)
			heat := &strings.Builder{}
			shades := []byte(" .:-=+*#%@")
			for i := 0; i < diff.Rows; i++ {
				for j := 0; j < diff.Cols; j++ {
					v := diff.At(i, j)
					idx := int(v * float64(len(shades)-1) * 2) // saturate at 0.5
					if idx >= len(shades) {
						idx = len(shades) - 1
					}
					heat.WriteByte(shades[idx])
				}
				heat.WriteByte('\n')
			}
			out = append(out, TableVCell{Dataset: spec.Name, Model: m.Name(), MeanDiff: mean, HeatMap: heat.String()})
		}
	}
	return out, nil
}

// PrintTableV renders the correlation-difference summary with heat maps.
func PrintTableV(w io.Writer, cells []TableVCell) {
	fmt.Fprintln(w, "Table V: |real−synthetic| association difference (darker = worse)")
	for _, c := range cells {
		fmt.Fprintf(w, "\n%s / %s  (mean |Δ| = %.4f)\n%s", c.Dataset, c.Model, c.MeanDiff, c.HeatMap)
	}
}

// TableVIIRow is one privacy-sensitivity row of Table VII.
type TableVIIRow struct {
	Dataset string
	Steps   []int
	Scores  []Stat
}

// TableVII sweeps the number of inference denoising steps (2, 5, 25) and
// reports the privacy score of the centralized latent model (whose 25-step
// column matches Table VI's LatentDiff row in the paper).
func (c Config) TableVII() ([]TableVIIRow, error) {
	cc := c
	if cc.Datasets == nil {
		cc.Datasets = []string{"abalone", "heloc"}
	}
	steps := []int{2, 5, 25}
	specs, err := cc.datasets()
	if err != nil {
		return nil, err
	}
	var out []TableVIIRow
	for _, spec := range specs {
		train, _ := cc.prepare(spec)
		row := TableVIIRow{Dataset: spec.Name, Steps: steps}
		for _, st := range steps {
			vals := make([]float64, 0, cc.Trials)
			for trial := 0; trial < cc.Trials; trial++ {
				opts := cc.Opts
				opts.Seed = cc.Seed + int64(trial)*TrialSeedStride
				m := core.NewLatentDiff(opts)
				if err := m.Fit(train); err != nil {
					return nil, err
				}
				m.SetSynthSteps(st)
				synth, err := m.Sample(cc.SynthRows)
				if err != nil {
					return nil, err
				}
				rep, err := privacy.Evaluate(train, synth, cc.PrivCfg)
				if err != nil {
					return nil, err
				}
				vals = append(vals, rep.Score)
			}
			row.Scores = append(row.Scores, statOf(vals))
		}
		out = append(out, row)
	}
	return out, nil
}

// PrintTableVII renders the denoising-step privacy sensitivity table.
func PrintTableVII(w io.Writer, rows []TableVIIRow) {
	fmt.Fprintln(w, "Table VII: privacy score vs inference timesteps")
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%-10s", "Dataset")
	for _, s := range rows[0].Steps {
		fmt.Fprintf(w, " %14d", s)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s", r.Dataset)
		for _, s := range r.Scores {
			fmt.Fprintf(w, " %14s", s)
		}
		fmt.Fprintln(w)
	}
}
