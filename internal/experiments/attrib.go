package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"silofuse/internal/obs/profile"
)

// Bench-regression attribution: when `silofuse-obs diff` finds a regressed
// metric and both runs carried phase-scoped profiles (results/<run>/profiles),
// the matching phase profiles from the two runs are decoded, flattened and
// diffed, and the report names the functions whose weight grew most — the
// difference between "diffusion-train got 2× slower" and "the time went to
// (*Model).debugSpinStep".

// ProfilesSubdir is the run-directory subdirectory holding phase profiles.
const ProfilesSubdir = "profiles"

// stagePhase maps a training-stage metric suffix (rows_per_sec/<stage>,
// step_p95_sec/<stage>, allocs_per_step/<stage>, ...) to the pipeline
// phase whose profile covers it.
var stagePhase = map[string]string{
	"ae":        "ae-train",
	"diffusion": "diffusion-train",
	"e2e":       "e2e-train",
	"synthesis": "synthesis",
}

// PhaseProfileFor maps a regressed metric key to the phase and profile
// kind that explain it: wall-clock classes read the CPU profile,
// allocation classes the heap profile, wire classes have no profile.
// Returns ok=false for metrics attribution cannot cover.
func PhaseProfileFor(metric string) (phase, kind string, ok bool) {
	class, rest, found := strings.Cut(metric, "/")
	if !found {
		return "", "", false
	}
	switch class {
	case "rows_per_sec", "step_p95_sec":
		if phase, ok = stagePhase[rest]; !ok {
			return "", "", false
		}
		return phase, profile.KindCPU, true
	case "allocs_per_step", "alloc_bytes_per_step":
		if phase, ok = stagePhase[rest]; !ok {
			return "", "", false
		}
		return phase, profile.KindHeap, true
	case "phase_sec", "loss":
		// phase_sec keys carry the phase name itself. Loss regressions are
		// attributed to the phase's CPU profile too (a changed kernel shows
		// up in both); their keys use stage names (loss/ae) or phase names
		// (loss/ae-train) depending on the source, so map stages first.
		if phase, ok = stagePhase[rest]; ok {
			return phase, profile.KindCPU, true
		}
		return rest, profile.KindCPU, true
	default:
		return "", "", false
	}
}

// Attribution explains one regressed phase/kind pair with the top function
// deltas between the base and current runs' profiles.
type Attribution struct {
	Phase   string              `json:"phase"`
	Kind    string              `json:"kind"`
	Metrics []string            `json:"metrics"` // regressed metric keys mapped here
	Unit    string              `json:"unit,omitempty"`
	Top     []profile.FuncDelta `json:"top,omitempty"`
	Err     string              `json:"err,omitempty"` // why attribution was unavailable
}

// AttributeRegressions maps every regressed entry of rep to its phase
// profile pair under baseDir/curDir and diffs them. Metrics that share a
// phase/kind are grouped into one attribution; topN caps the function
// table (<=0 means 5). Runs without profiles yield attributions whose Err
// explains the gap rather than an error — attribution is best-effort
// context for the diff report, never a reason to fail it.
func AttributeRegressions(rep *DiffReport, baseDir, curDir string, topN int) []Attribution {
	if rep == nil || rep.Regressions == 0 {
		return nil
	}
	if topN <= 0 {
		topN = 5
	}
	groups := make(map[string]*Attribution)
	var order []string
	for _, e := range rep.Entries {
		if !e.Regressed {
			continue
		}
		phase, kind, ok := PhaseProfileFor(e.Metric)
		if !ok {
			continue
		}
		key := phase + "/" + kind
		a, seen := groups[key]
		if !seen {
			a = &Attribution{Phase: phase, Kind: kind}
			groups[key] = a
			order = append(order, key)
		}
		a.Metrics = append(a.Metrics, e.Metric)
	}
	sort.Strings(order)
	out := make([]Attribution, 0, len(order))
	for _, key := range order {
		a := groups[key]
		a.fill(baseDir, curDir, topN)
		out = append(out, *a)
	}
	return out
}

// fill loads and diffs the phase's profile pair, recording failures in Err.
func (a *Attribution) fill(baseDir, curDir string, topN int) {
	file := profile.EntryFileName(a.Phase, a.Kind)
	baseFlat, err := loadFlat(filepath.Join(baseDir, ProfilesSubdir, file), a.Kind)
	if err != nil {
		a.Err = fmt.Sprintf("base: %v", err)
		return
	}
	curFlat, err := loadFlat(filepath.Join(curDir, ProfilesSubdir, file), a.Kind)
	if err != nil {
		a.Err = fmt.Sprintf("cur: %v", err)
		return
	}
	a.Unit = curFlat.Unit
	deltas := profile.Diff(baseFlat, curFlat)
	if len(deltas) > topN {
		deltas = deltas[:topN]
	}
	a.Top = deltas
}

// loadFlat decodes one profile file and flattens its natural column: the
// default (cpu) for CPU profiles, alloc_space for heap profiles (steady
// -state regressions show in cumulative allocation, not the live set).
func loadFlat(path, kind string) (*profile.FlatProfile, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, fmt.Errorf("no %s profile (%s)", kind, filepath.Base(path))
	}
	p, err := profile.ParsePprofFile(path)
	if err != nil {
		return nil, err
	}
	col := ""
	if kind == profile.KindHeap {
		col = "alloc_space"
	}
	return p.Flatten(col)
}

// HasProfiles reports whether a run directory carries a profiles subdir.
func HasProfiles(runDir string) bool {
	fi, err := os.Stat(filepath.Join(runDir, ProfilesSubdir))
	return err == nil && fi.IsDir()
}

// WriteAttributions renders the attribution tables under the diff report.
func WriteAttributions(w io.Writer, atts []Attribution) error {
	for _, a := range atts {
		if _, err := fmt.Fprintf(w, "\nattribution: phase %s (%s) — regressed: %s\n",
			a.Phase, a.Kind, strings.Join(a.Metrics, ", ")); err != nil {
			return err
		}
		if a.Err != "" {
			if _, err := fmt.Fprintf(w, "  unavailable: %s\n", a.Err); err != nil {
				return err
			}
			continue
		}
		if len(a.Top) == 0 {
			if _, err := fmt.Fprintln(w, "  no function deltas (empty profiles)"); err != nil {
				return err
			}
			continue
		}
		width := len("FUNCTION")
		for _, d := range a.Top {
			if len(d.Name) > width {
				width = len(d.Name)
			}
		}
		if _, err := fmt.Fprintf(w, "  %-*s  %12s  %12s  %12s\n", width, "FUNCTION", "BASE(self)", "CUR(self)", "DELTA"); err != nil {
			return err
		}
		for _, d := range a.Top {
			delta := profile.FormatValue(d.DeltaSelf, a.Unit)
			if d.DeltaSelf > 0 {
				delta = "+" + delta
			}
			if _, err := fmt.Fprintf(w, "  %-*s  %12s  %12s  %12s\n", width, d.Name,
				profile.FormatValue(d.BaseSelf, a.Unit),
				profile.FormatValue(d.CurSelf, a.Unit), delta); err != nil {
				return err
			}
		}
	}
	return nil
}
