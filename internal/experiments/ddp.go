package experiments

import (
	"fmt"
	"io"

	"silofuse/internal/core"
	"silofuse/internal/obs"
	"silofuse/internal/silo"
)

// DDPScalingRow is one worker count's data-parallel training measurement:
// diffusion-phase throughput plus the gradient traffic the worker plane
// put on the bus. Losses are bit-identical across worker counts by
// construction (the equivalence tests pin it), so the sweep reports only
// the dimensions that are allowed to move.
type DDPScalingRow struct {
	Dataset    string
	Workers    int
	RowsPerSec float64 // diffusion training rows/sec at this worker count
	StepSecSum float64 // total diffusion step seconds
	GradBytes  int64   // bus bytes booked under the grad kind
	TotalBytes int64   // all bus bytes of the run
}

// DDPScaling sweeps data-parallel diffusion training over N ∈ {1, 2, 4}
// workers on a stacked fit and reports worker-scaling throughput. Each run
// measures on a private recorder; the diffusion stage's rows/sec is
// re-emitted into the invocation's main recorder under the "ddp_w<N>"
// stage, so the bench snapshot (and the -check-bench gate) carries one
// rows_per_sec entry per worker count.
func (c Config) DDPScaling() ([]DDPScalingRow, error) {
	cc := c
	if cc.Datasets == nil {
		cc.Datasets = []string{"abalone"}
	}
	specs, err := cc.datasets()
	if err != nil {
		return nil, err
	}
	var out []DDPScalingRow
	for _, spec := range specs {
		train, _ := cc.prepare(spec)
		for _, n := range []int{1, 2, 4} {
			opts := cc.Opts
			opts.AEIters = 20
			opts.DiffIters = 40
			opts.TrainWorkers = n
			rec := obs.NewRecorder()
			opts.Recorder = rec
			sf := core.NewSiloFuse(opts)
			if err := sf.Fit(train); err != nil {
				return nil, fmt.Errorf("experiments: ddp fit (N=%d): %w", n, err)
			}
			row := DDPScalingRow{Dataset: spec.Name, Workers: n}
			snap := rec.Snapshot()
			rows := snap.Counters["diffusion_rows_total"]
			if h, ok := snap.Histograms["diffusion_step_seconds"]; ok && h.Sum > 0 {
				row.RowsPerSec = float64(rows) / h.Sum
				row.StepSecSum = h.Sum
			}
			st := sf.CommStats()
			row.GradBytes = st.ByKind[silo.KindGrad]
			row.TotalBytes = st.Bytes
			out = append(out, row)

			// Surface the sweep in the main recorder: one synthetic stage
			// per worker count, shaped so BenchSnapshot.FromRecorder derives
			// the same rows/sec (rows_total over step_seconds sum).
			if main := c.Opts.Recorder; main != nil && row.StepSecSum > 0 {
				stage := fmt.Sprintf("ddp_w%d", n)
				main.Reg.Counter(stage + "_rows_total").Add(rows)
				main.Reg.Histogram(stage + "_step_seconds").Observe(row.StepSecSum)
			}
		}
	}
	return out, nil
}

// PrintDDPScaling renders the worker-scaling sweep with each worker
// count's speedup over the single-worker run of the same dataset.
func PrintDDPScaling(w io.Writer, rows []DDPScalingRow) {
	fmt.Fprintln(w, "DDP scaling: data-parallel diffusion training throughput by worker count")
	base := make(map[string]float64)
	for _, r := range rows {
		if r.Workers == 1 {
			base[r.Dataset] = r.RowsPerSec
		}
	}
	for _, r := range rows {
		speedup := ""
		if b := base[r.Dataset]; b > 0 && r.RowsPerSec > 0 {
			speedup = fmt.Sprintf("  %.2fx", r.RowsPerSec/b)
		}
		fmt.Fprintf(w, "  %-12s N=%d  %10.1f rows/s%s  grad %s  total %s\n",
			r.Dataset, r.Workers, r.RowsPerSec, speedup, humanBytes(r.GradBytes), humanBytes(r.TotalBytes))
	}
}
