package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"silofuse/internal/obs"
	"silofuse/internal/obs/profile"
	"silofuse/internal/silo"
)

// RuntimeInfo pins the toolchain and machine a run executed on, so manifests
// and bench snapshots from different hosts are comparable.
type RuntimeInfo struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GOMAXPROCS is the scheduler's P count at capture time — the number
	// that actually bounds kernel-pool parallelism, which can differ from
	// NumCPU under cgroup limits or an explicit GOMAXPROCS override.
	GOMAXPROCS int `json:"gomaxprocs"`
}

// CurrentRuntime captures this process's RuntimeInfo.
func CurrentRuntime() RuntimeInfo {
	return RuntimeInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// PhaseSummary is one top-level trace span flattened for the manifest.
type PhaseSummary struct {
	Name     string         `json:"name"`
	StartSec float64        `json:"start_sec"`
	DurSec   float64        `json:"dur_sec"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// Manifest is the per-run record written to results/<run>/manifest.json: the
// configuration that produced the run, per-phase wall-clock durations, final
// quality metrics, wire traffic broken down by message kind, and the full
// metrics snapshot. It is the machine-readable companion of a training or
// benchmark run — enough to reconstruct Figure 10-style communication
// numbers without re-running.
type Manifest struct {
	Run             string             `json:"run"`
	CreatedAt       time.Time          `json:"created_at"`
	Seed            int64              `json:"seed"`
	Runtime         RuntimeInfo        `json:"runtime"`
	Config          map[string]any     `json:"config,omitempty"`
	Phases          []PhaseSummary     `json:"phases"`
	FinalMetrics    map[string]float64 `json:"final_metrics,omitempty"`
	WireMessages    int64              `json:"wire_messages"`
	WireBytes       int64              `json:"wire_bytes"`
	WireBytesByKind map[string]int64   `json:"wire_bytes_by_kind"`
	WireBytesByDir  map[string]int64   `json:"wire_bytes_by_dir,omitempty"`
	// Wire is the codec-level bytes-vs-error section, keyed "<codec>/<kind>":
	// for each compressed message kind, the bytes actually framed, the f64
	// baseline they replace, and the max/mean reconstruction error the
	// precision tier introduced (zero for lossless codecs).
	Wire    map[string]WireCodecStats `json:"wire,omitempty"`
	Metrics obs.Snapshot              `json:"metrics"`
	// Profiles indexes the phase-scoped pprof captures under the run's
	// profiles/ subdirectory (see internal/obs/profile).
	Profiles []profile.Entry `json:"profiles,omitempty"`
}

// NewManifest starts a manifest for the named run.
func NewManifest(run string, seed int64) *Manifest {
	return &Manifest{
		Run:             run,
		CreatedAt:       time.Now().UTC(),
		Seed:            seed,
		Runtime:         CurrentRuntime(),
		Config:          make(map[string]any),
		FinalMetrics:    make(map[string]float64),
		WireBytesByKind: make(map[string]int64),
	}
}

// FromRecorder fills the manifest from rec: phases from the tracer's
// top-level spans, wire traffic from the bus_* counters, the codec-level
// bytes-vs-error accounting from the wire_* metric families, and the full
// metrics snapshot. A nil or disabled recorder leaves the manifest
// unchanged.
func (m *Manifest) FromRecorder(rec *obs.Recorder) {
	if rec == nil {
		return
	}
	for _, sp := range rec.Trace.Spans() {
		if sp.Parent != "" {
			continue
		}
		m.Phases = append(m.Phases, PhaseSummary{
			Name: sp.Name, StartSec: sp.StartSec, DurSec: sp.DurSec, Attrs: sp.Attrs,
		})
	}
	m.Metrics = rec.Snapshot()
	m.Wire = mergeWire(m.Wire, parseWireMetrics(m.Metrics))
	for name, v := range m.Metrics.Counters {
		if kind, ok := strings.CutPrefix(name, "bus_bytes_total_"); ok {
			m.WireBytesByKind[kind] += v
			m.WireBytes += v
		}
		if strings.HasPrefix(name, "bus_messages_total_") {
			m.WireMessages += v
		}
	}
}

// FromStats merges transport statistics from a Bus snapshot: the per-link
// byte breakdown, plus totals when the recorder did not already supply them.
func (m *Manifest) FromStats(st silo.Stats) {
	if len(st.BytesByDir) > 0 {
		if m.WireBytesByDir == nil {
			m.WireBytesByDir = make(map[string]int64, len(st.BytesByDir))
		}
		for k, v := range st.BytesByDir {
			m.WireBytesByDir[k] += v
		}
	}
	if m.WireMessages == 0 {
		m.WireMessages = st.Messages
	}
	if m.WireBytes == 0 {
		m.WireBytes = st.Bytes
		for k, v := range st.ByKind {
			m.WireBytesByKind[string(k)] += v
		}
	}
}

// Write creates dir if needed and writes the manifest as indented JSON to
// dir/manifest.json.
func (m *Manifest) Write(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: manifest dir: %w", err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: manifest encode: %w", err)
	}
	path := filepath.Join(dir, "manifest.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("experiments: manifest write: %w", err)
	}
	return nil
}
