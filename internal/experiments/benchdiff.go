package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Bench/run diffing: the regression engine behind `silofuse-obs diff` and
// silofuse-bench's -bench-baseline gate. Two snapshots (or two run
// directories) are flattened into namespaced metric keys —
//
//	rows_per_sec/<stage>          training throughput (machine-variant)
//	step_p95_sec/<stage>          step-latency tail (machine-variant)
//	allocs_per_step/<stage>       steady-state heap allocations (deterministic)
//	alloc_bytes_per_step/<stage>  steady-state heap bytes (deterministic)
//	wire_bytes/<kind>             modeled wire bytes (bit-deterministic)
//	wire_enc_bytes/<codec>/<kind> codec-framed wire bytes (bit-deterministic)
//	wire_err_max/<codec>/<kind>   codec max reconstruction error (deterministic)
//	loss/<stage>                  final training loss (bit-deterministic)
//	phase_sec/<phase>             phase wall time (informational by default)
//
// — and compared under per-class thresholds: loose for machine-variant
// metrics, tight for deterministic ones.

// DiffThresholds sets the allowed regression per metric class. Fractions
// are relative ("0.1" = 10% growth); AllocGrowth is absolute (allocations
// per step are small integers in steady state, so +2 means "two new
// allocations per step").
type DiffThresholds struct {
	// ThroughputDrop is the allowed fractional drop in rows_per_sec and rise
	// in step_p95_sec (machine-variant: CI boxes differ widely).
	ThroughputDrop float64
	// AllocGrowth is the allowed absolute growth in allocs_per_step.
	AllocGrowth float64
	// AllocBytesGrowth is the allowed fractional growth in
	// alloc_bytes_per_step.
	AllocBytesGrowth float64
	// WireGrowth is the allowed fractional growth in wire_bytes and
	// wire_enc_bytes (the byte model is deterministic, so growth means the
	// protocol or codec framing itself changed).
	WireGrowth float64
	// WireErrGrowth is the allowed fractional growth in wire_err_max: the
	// reconstruction error a lossy codec introduces is deterministic for a
	// fixed configuration and seed, so meaningful growth means the codec's
	// accuracy degraded.
	WireErrGrowth float64
	// LossGrowth is the allowed fractional growth in loss (bit-identical
	// across runs of the same configuration and seed).
	LossGrowth float64
	// PhaseGrowth, when > 0, also gates phase_sec wall times; zero leaves
	// them informational.
	PhaseGrowth float64
}

// DefaultDiffThresholds returns the CI gate policy: generous on wall-clock
// metrics, tight on deterministic ones.
func DefaultDiffThresholds() DiffThresholds {
	return DiffThresholds{
		ThroughputDrop:   0.60,
		AllocGrowth:      2,
		AllocBytesGrowth: 0.25,
		WireGrowth:       0.10,
		WireErrGrowth:    0.10,
		LossGrowth:       0.25,
	}
}

// DiffEntry is one compared metric.
type DiffEntry struct {
	Metric    string  `json:"metric"`
	Base      float64 `json:"base"`
	Cur       float64 `json:"cur"`
	Delta     float64 `json:"delta"`
	Pct       float64 `json:"pct"` // fractional change vs base (0 when base is 0)
	Regressed bool    `json:"regressed,omitempty"`
	Note      string  `json:"note,omitempty"`
}

// DiffReport is the result of comparing two metric sets.
type DiffReport struct {
	Entries     []DiffEntry `json:"entries"`
	Regressions int         `json:"regressions"`
}

// BenchMetrics flattens a snapshot into the namespaced metric keys the diff
// engine compares.
func BenchMetrics(b *BenchSnapshot) map[string]float64 {
	if b == nil {
		return nil
	}
	out := make(map[string]float64)
	for stage, v := range b.RowsPerSec {
		out["rows_per_sec/"+stage] = v
	}
	for stage, h := range b.StepSeconds {
		out["step_p95_sec/"+stage] = h.P95
	}
	for stage, v := range b.AllocsPerStep {
		out["allocs_per_step/"+stage] = v
	}
	for stage, v := range b.AllocBytesPerStep {
		out["alloc_bytes_per_step/"+stage] = v
	}
	for kind, v := range b.WireBytesByKind {
		out["wire_bytes/"+kind] = float64(v)
	}
	for key, st := range b.Wire {
		out["wire_enc_bytes/"+key] = float64(st.Bytes)
		out["wire_err_max/"+key] = st.MaxErr
	}
	for _, ph := range b.Phases {
		out["phase_sec/"+ph.Name] = ph.DurSec
		if loss, ok := ph.Attrs["loss"].(float64); ok {
			out["loss/"+ph.Name] = loss
		}
	}
	return out
}

// EventMetrics derives the comparable metric set from a run's event stream
// (obs.ReadEventsFile output): the final loss and mean throughput per
// training stage, each phase's duration, and the final cumulative wire
// bytes by kind.
func EventMetrics(events []map[string]any) map[string]float64 {
	out := make(map[string]float64)
	rpsSum := make(map[string]float64)
	rpsN := make(map[string]int)
	for _, ev := range events {
		typ, _ := ev["type"].(string)
		switch typ {
		case "train":
			stage, _ := ev["stage"].(string)
			if stage == "" {
				continue
			}
			if loss, ok := ev["loss"].(float64); ok {
				out["loss/"+stage] = loss // last one wins: final loss
			}
			if rps, ok := ev["rows_per_sec"].(float64); ok && rps > 0 {
				rpsSum[stage] += rps
				rpsN[stage]++
			}
		case "phase":
			name, _ := ev["name"].(string)
			if name == "" {
				continue
			}
			if dur, ok := ev["dur_sec"].(float64); ok {
				out["phase_sec/"+name] = dur
			}
			if attrs, ok := ev["attrs"].(map[string]any); ok {
				if loss, ok := attrs["loss"].(float64); ok {
					out["loss/"+name] = loss
				}
			}
			if byKind, ok := ev["bus_bytes_by_kind"].(map[string]any); ok {
				for kind, v := range byKind {
					if bytes, ok := v.(float64); ok && bytes > out["wire_bytes/"+kind] {
						out["wire_bytes/"+kind] = bytes // cumulative counter: keep the max
					}
				}
			}
		}
	}
	for stage, sum := range rpsSum {
		out["rows_per_sec/"+stage] = sum / float64(rpsN[stage])
	}
	return out
}

// DiffMetrics compares cur against base under th. Metrics present on only
// one side are reported as informational entries, never regressions.
func DiffMetrics(base, cur map[string]float64, th DiffThresholds) *DiffReport {
	keys := make([]string, 0, len(base)+len(cur))
	seen := make(map[string]bool, len(base)+len(cur))
	for k := range base {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range cur {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	rep := &DiffReport{}
	for _, k := range keys {
		b, inBase := base[k]
		c, inCur := cur[k]
		e := DiffEntry{Metric: k, Base: b, Cur: c, Delta: c - b}
		switch {
		case !inBase:
			e.Note = "new"
		case !inCur:
			e.Note = "missing"
		default:
			if b != 0 { //silofuse:bitwise-ok zero-baseline guard before division
				e.Pct = (c - b) / b
			}
			e.Regressed, e.Note = regressed(k, b, c, th)
		}
		if e.Regressed {
			rep.Regressions++
		}
		rep.Entries = append(rep.Entries, e)
	}
	return rep
}

// regressed applies the metric class's threshold.
func regressed(key string, base, cur float64, th DiffThresholds) (bool, string) {
	class, _, _ := strings.Cut(key, "/")
	switch class {
	case "rows_per_sec":
		if base > 0 && cur < base*(1-th.ThroughputDrop) {
			return true, fmt.Sprintf("throughput dropped > %.0f%%", th.ThroughputDrop*100)
		}
	case "step_p95_sec":
		if base > 0 && cur > base*(1+th.ThroughputDrop) {
			return true, fmt.Sprintf("step tail grew > %.0f%%", th.ThroughputDrop*100)
		}
	case "allocs_per_step":
		if cur > base+th.AllocGrowth {
			return true, fmt.Sprintf("allocs/step grew > +%.0f", th.AllocGrowth)
		}
	case "alloc_bytes_per_step":
		if base >= 0 && cur > base*(1+th.AllocBytesGrowth)+64 {
			return true, fmt.Sprintf("alloc bytes/step grew > %.0f%%", th.AllocBytesGrowth*100)
		}
	case "wire_bytes", "wire_enc_bytes":
		if cur > base*(1+th.WireGrowth)+256 {
			return true, fmt.Sprintf("wire bytes grew > %.0f%%", th.WireGrowth*100)
		}
	case "wire_err_max":
		// The +1e-12 floor keeps lossless codecs (base and cur both ~0)
		// from tripping on float noise while still catching a codec that
		// silently turned lossy.
		if cur > base*(1+th.WireErrGrowth)+1e-12 {
			return true, fmt.Sprintf("codec reconstruction error grew > %.0f%%", th.WireErrGrowth*100)
		}
	case "loss":
		// Growth is measured against |base|: autoencoder NLL goes negative,
		// where base*(1+g) would shrink the allowance below the baseline
		// itself and flag even bit-identical losses.
		if cur > base+math.Abs(base)*th.LossGrowth+1e-9 {
			return true, fmt.Sprintf("loss grew > %.0f%%", th.LossGrowth*100)
		}
	case "phase_sec":
		if th.PhaseGrowth > 0 && base > 0 && cur > base*(1+th.PhaseGrowth) {
			return true, fmt.Sprintf("phase time grew > %.0f%%", th.PhaseGrowth*100)
		}
	}
	return false, ""
}

// WriteTable renders the report as an aligned delta table, regressions
// flagged in the status column.
func (d *DiffReport) WriteTable(w io.Writer) error {
	if d == nil {
		return nil
	}
	width := len("METRIC")
	for _, e := range d.Entries {
		if len(e.Metric) > width {
			width = len(e.Metric)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %14s  %14s  %8s  %s\n", width, "METRIC", "BASE", "CURRENT", "DELTA", "STATUS"); err != nil {
		return err
	}
	for _, e := range d.Entries {
		status := "ok"
		switch {
		case e.Regressed:
			status = "REGRESSION: " + e.Note
		case e.Note != "":
			status = e.Note
		}
		pct := "      --"
		if e.Base != 0 && e.Note != "new" && e.Note != "missing" { //silofuse:bitwise-ok zero-baseline guard before percentage formatting
			pct = fmt.Sprintf("%+7.1f%%", e.Pct*100)
		}
		if _, err := fmt.Fprintf(w, "%-*s  %14.6g  %14.6g  %8s  %s\n", width, e.Metric, e.Base, e.Cur, pct, status); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d metrics compared, %d regression(s)\n", len(d.Entries), d.Regressions)
	return err
}
