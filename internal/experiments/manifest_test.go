//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"silofuse/internal/obs"
	"silofuse/internal/silo"
)

func TestManifestFromRecorderAndWrite(t *testing.T) {
	rec := obs.NewRecorder()
	sp := rec.StartSpan("ae-train")
	sp.SetAttr("clients", 2)
	rec.TrainStep("ae", 1.5, 64, time.Millisecond)
	sp.End()
	sp = rec.StartSpan("diffusion-train")
	child := sp.Child("inner") // nested spans must not become phases
	child.End()
	sp.End()
	rec.Message("latents", 4096, time.Millisecond)
	rec.Message("synth-latent", 1024, time.Millisecond)
	rec.WireCodec("f32", "latents", 4096, 2080, 1.5e-7, 4e-8)

	m := NewManifest("unit", 7)
	m.Config["model"] = "silofuse"
	m.FinalMetrics["resemblance"] = 80.5
	m.FromRecorder(rec)
	m.FromStats(silo.Stats{
		Messages:   3,
		Bytes:      5120,
		BytesByDir: map[string]int64{"c0->coord": 4096, "coord->c0": 1024},
	})

	if len(m.Phases) != 2 {
		t.Fatalf("phases = %+v, want the 2 top-level spans", m.Phases)
	}
	if m.Phases[0].Name != "ae-train" || m.Phases[1].Name != "diffusion-train" {
		t.Fatalf("phase order = %+v", m.Phases)
	}
	if m.WireBytesByKind["latents"] != 4096 || m.WireBytesByKind["synth-latent"] != 1024 {
		t.Fatalf("wire bytes by kind = %v", m.WireBytesByKind)
	}
	if m.WireBytes != 5120 || m.WireMessages != 2 {
		t.Fatalf("wire totals = %d B / %d msgs", m.WireBytes, m.WireMessages)
	}
	if m.WireBytesByDir["c0->coord"] != 4096 {
		t.Fatalf("wire bytes by dir = %v", m.WireBytesByDir)
	}
	if m.Metrics.Counters["ae_steps_total"] != 1 {
		t.Fatalf("metrics snapshot = %v", m.Metrics.Counters)
	}
	wire := m.Wire["f32/latents"]
	if wire.Messages != 1 || wire.RawBytes != 4096 || wire.Bytes != 2080 ||
		wire.MaxErr != 1.5e-7 || wire.MeanErr != 4e-8 {
		t.Fatalf("wire section = %+v", m.Wire)
	}

	dir := filepath.Join(t.TempDir(), "results", "unit")
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if back.Run != "unit" || back.Seed != 7 {
		t.Fatalf("round trip = %+v", back)
	}
	if back.WireBytesByKind["latents"] != 4096 {
		t.Fatalf("round-trip wire bytes = %v", back.WireBytesByKind)
	}
	if back.FinalMetrics["resemblance"] != 80.5 {
		t.Fatalf("round-trip final metrics = %v", back.FinalMetrics)
	}
	if back.Wire["f32/latents"].Bytes != 2080 {
		t.Fatalf("round-trip wire section = %+v", back.Wire)
	}
}

// TestManifestNilRecorder: building a manifest without telemetry is valid.
func TestManifestNilRecorder(t *testing.T) {
	m := NewManifest("empty", 1)
	m.FromRecorder(nil)
	if len(m.Phases) != 0 || m.WireBytes != 0 {
		t.Fatalf("nil recorder should leave manifest empty: %+v", m)
	}
	if err := m.Write(t.TempDir()); err != nil {
		t.Fatal(err)
	}
}
