// Package experiments regenerates every table and figure of the paper's
// evaluation section (Tables II–VII, Figures 10–11). Each experiment has a
// runner returning structured results plus a formatter that prints the same
// rows/series the paper reports. Scale (rows, iterations, trials) is
// configurable; Fast() keeps CPU runs to seconds per cell while preserving
// the qualitative shape, Standard() runs bigger.
package experiments

import (
	"fmt"
	"math"

	"silofuse/internal/core"
	"silofuse/internal/datagen"
	"silofuse/internal/metrics"
	"silofuse/internal/privacy"
	"silofuse/internal/tabular"
)

// Experiment-level seed constants. Every source of randomness an experiment
// draws beyond Config.Seed is named here so the seededrand analyzer (and a
// reader) can see at a glance that figure reproduction is fully pinned.
const (
	// PermutationSeed seeds the column permutation of the Figure 11
	// permuted-split ablation. It is fixed independently of Config.Seed so
	// the permuted feature order is identical across trials and scales —
	// only the model seed varies between trials.
	PermutationSeed int64 = 12343
	// TrialSeedStride spaces the per-trial model seeds (Seed + trial*stride);
	// a prime keeps trial streams from aliasing dataset seed offsets.
	TrialSeedStride int64 = 7919
)

// Config controls experiment scale.
type Config struct {
	RowCap    int // cap on generated rows per dataset (0 = paper row count)
	SynthRows int // synthetic rows drawn for evaluation
	TestFrac  float64
	Trials    int
	Seed      int64

	Opts    core.Options
	ResCfg  metrics.ResemblanceConfig
	UtilCfg metrics.UtilityConfig
	PrivCfg privacy.Config

	Datasets []string // nil = all nine
	Models   []string // nil = full zoo
}

// Fast returns a configuration sized for testing.B benchmarks: small but
// large enough that model rankings remain visible.
func Fast() Config {
	opts := core.FastOptions()
	util := metrics.DefaultUtilityConfig()
	util.Boost.NumRounds = 10
	util.MaxTrainRows = 600
	priv := privacy.DefaultConfig()
	priv.Attacks = 100
	return Config{
		RowCap:    700,
		SynthRows: 500,
		TestFrac:  0.25,
		Trials:    1,
		Seed:      1,
		Opts:      opts,
		ResCfg:    metrics.DefaultResemblanceConfig(),
		UtilCfg:   util,
		PrivCfg:   priv,
	}
}

// Standard returns the CLI default: larger datasets, more iterations and
// multiple trials (still CPU-feasible, minutes per table).
func Standard() Config {
	opts := core.DefaultOptions()
	return Config{
		RowCap:    4000,
		SynthRows: 2000,
		TestFrac:  0.2,
		Trials:    3,
		Seed:      1,
		Opts:      opts,
		ResCfg:    metrics.DefaultResemblanceConfig(),
		UtilCfg:   metrics.DefaultUtilityConfig(),
		PrivCfg:   privacy.DefaultConfig(),
	}
}

// datasets resolves the configured dataset subset.
func (c Config) datasets() ([]datagen.Spec, error) {
	names := c.Datasets
	if names == nil {
		names = datagen.Names()
	}
	out := make([]datagen.Spec, 0, len(names))
	for _, n := range names {
		s, err := datagen.ByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// models resolves the configured model subset.
func (c Config) models() []string {
	if c.Models != nil {
		return c.Models
	}
	return core.ModelNames()
}

// prepare generates a dataset at the configured cap and splits train/test.
func (c Config) prepare(spec datagen.Spec) (train, test *tabular.Table) {
	rows := spec.PaperRows
	if c.RowCap > 0 && rows > c.RowCap {
		rows = c.RowCap
	}
	full := spec.Generate(rows, spec.Seed+c.Seed)
	return full.Split(newSplitRng(spec.Seed+c.Seed), c.TestFrac)
}

// Stat is a mean ± population standard deviation over trials.
type Stat struct {
	Mean, Std float64
}

// statOf summarises a slice of trial values.
func statOf(xs []float64) Stat {
	if len(xs) == 0 {
		return Stat{}
	}
	m := 0.0
	for _, v := range xs {
		m += v
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return Stat{Mean: m, Std: math.Sqrt(v / float64(len(xs)))}
}

// String formats the stat the way the paper's tables do.
func (s Stat) String() string { return fmt.Sprintf("%.1f±%.2f", s.Mean, s.Std) }
