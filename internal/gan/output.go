// Package gan implements the two centralized GAN baselines of the paper's
// evaluation: GAN(linear) (CTGAN-flavoured MLP backbone) and GAN(conv)
// (CTAB-GAN-flavoured 1-D convolutional backbone). Both generate in the
// one-hot + standardised feature space and are trained with the
// non-saturating BCE objective.
package gan

import (
	"silofuse/internal/nn"
	"silofuse/internal/tabular"
	"silofuse/internal/tensor"
)

// outputActivation applies a per-span activation to the generator output:
// softmax over each categorical one-hot span (so fake rows resemble the
// real one-hot blocks) and identity over numeric spans.
type outputActivation struct {
	spans  []tabular.Span
	output *tensor.Matrix
}

// newOutputActivation builds the activation for the encoded layout spans.
func newOutputActivation(spans []tabular.Span) *outputActivation {
	return &outputActivation{spans: spans}
}

// Forward applies the span-wise activations.
func (o *outputActivation) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	out := x.Clone()
	for _, sp := range o.spans {
		if sp.Kind != tabular.Categorical {
			continue
		}
		logits := x.SliceCols(sp.Lo, sp.Hi)
		probs := nn.Softmax(logits)
		for k := 0; k < probs.Cols; k++ {
			out.SetCol(sp.Lo+k, probs.Col(k))
		}
	}
	o.output = out
	return out
}

// Backward applies the softmax Jacobian on categorical spans and passes
// numeric gradients through unchanged.
func (o *outputActivation) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	out := gradOut.Clone()
	for _, sp := range o.spans {
		if sp.Kind != tabular.Categorical {
			continue
		}
		for i := 0; i < gradOut.Rows; i++ {
			y := o.output.Row(i)[sp.Lo:sp.Hi]
			g := gradOut.Row(i)[sp.Lo:sp.Hi]
			dot := 0.0
			for k := range y {
				dot += g[k] * y[k]
			}
			dst := out.Row(i)[sp.Lo:sp.Hi]
			for k := range y {
				dst[k] = y[k] * (g[k] - dot)
			}
		}
	}
	return out
}

// Params returns nil; the activation has no parameters.
func (o *outputActivation) Params() []*nn.Param { return nil }
