//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package gan

import (
	"math"
	"math/rand"
	"testing"

	"silofuse/internal/datagen"
	"silofuse/internal/nn"
	"silofuse/internal/stats"
	"silofuse/internal/tabular"
	"silofuse/internal/tensor"
)

func loanTable(t *testing.T, rows int) *tabular.Table {
	t.Helper()
	spec, err := datagen.ByName("loan")
	if err != nil {
		t.Fatal(err)
	}
	return spec.Generate(rows, 11)
}

func TestOutputActivationSoftmaxSpans(t *testing.T) {
	spans := []tabular.Span{
		{Col: 0, Lo: 0, Hi: 1, Kind: tabular.Numeric},
		{Col: 1, Lo: 1, Hi: 4, Kind: tabular.Categorical},
	}
	act := newOutputActivation(spans)
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(5, 4).Randn(rng, 2)
	out := act.Forward(x, true)
	for i := 0; i < 5; i++ {
		if out.At(i, 0) != x.At(i, 0) {
			t.Fatal("numeric span must pass through")
		}
		s := out.At(i, 1) + out.At(i, 2) + out.At(i, 3)
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("categorical span must be a distribution: sum %v", s)
		}
	}
}

// TestOutputActivationGradient checks the softmax-span backward pass with
// finite differences.
func TestOutputActivationGradient(t *testing.T) {
	spans := []tabular.Span{
		{Col: 0, Lo: 0, Hi: 2, Kind: tabular.Numeric},
		{Col: 1, Lo: 2, Hi: 5, Kind: tabular.Categorical},
	}
	act := newOutputActivation(spans)
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(3, 5).Randn(rng, 1)
	r := tensor.New(3, 5).Randn(rng, 1)
	out := act.Forward(x, true)
	_ = out
	gradIn := act.Backward(r.Clone())

	loss := func() float64 {
		o := act.Forward(x, true)
		s := 0.0
		for i := range o.Data {
			s += o.Data[i] * r.Data[i]
		}
		return s
	}
	const h = 1e-6
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := loss()
		x.Data[i] = orig - h
		lm := loss()
		x.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-gradIn.Data[i]) > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("grad mismatch at %d: %v vs %v", i, gradIn.Data[i], num)
		}
	}
}

func TestGANSampleShapeAndValidity(t *testing.T) {
	tb := loanTable(t, 100)
	g := New(rand.New(rand.NewSource(3)), tb, DefaultConfig(Linear))
	out, err := g.Sample(40)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 40 || out.Schema.NumColumns() != tb.Schema.NumColumns() {
		t.Fatalf("sample shape wrong: %d rows", out.Rows())
	}
}

func TestConvGANForwardBackward(t *testing.T) {
	tb := loanTable(t, 64)
	g := New(rand.New(rand.NewSource(4)), tb, DefaultConfig(Conv))
	d, gl := g.TrainStep(tb.Head(32))
	if math.IsNaN(d) || math.IsNaN(gl) {
		t.Fatal("conv GAN produced NaN losses")
	}
	out, err := g.Sample(10)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 10 {
		t.Fatal("sample failed")
	}
}

// TestGANLearnsMarginals trains the linear GAN briefly and checks the
// numeric marginals move toward the real ones (KS improves over an
// untrained GAN).
func TestGANLearnsMarginals(t *testing.T) {
	tb := loanTable(t, 600)
	nCat := len(tb.Schema.CategoricalIndexes())

	untrained := New(rand.New(rand.NewSource(5)), tb, DefaultConfig(Linear))
	before, err := untrained.Sample(600)
	if err != nil {
		t.Fatal(err)
	}
	g := New(rand.New(rand.NewSource(5)), tb, DefaultConfig(Linear))
	g.Train(tb, 400, 128)
	after, err := g.Sample(600)
	if err != nil {
		t.Fatal(err)
	}
	var ksBefore, ksAfter float64
	for j := nCat; j < tb.Schema.NumColumns(); j++ {
		ksBefore += stats.KSStatistic(tb.NumColumn(j), before.NumColumn(j))
		ksAfter += stats.KSStatistic(tb.NumColumn(j), after.NumColumn(j))
	}
	if ksAfter >= ksBefore {
		t.Fatalf("training did not improve marginals: before %v, after %v", ksBefore, ksAfter)
	}
}

// TestDiscriminatorArchitectureCanSeparate trains only the discriminator on
// a fixed real-vs-noise task, verifying the D architecture has the capacity
// to separate distributions (a GAN at equilibrium intentionally cannot).
func TestDiscriminatorArchitectureCanSeparate(t *testing.T) {
	tb := loanTable(t, 200)
	g := New(rand.New(rand.NewSource(6)), tb, DefaultConfig(Linear))
	xReal := g.Enc.Transform(tb)
	noise := tensor.New(200, g.width).Randn(rand.New(rand.NewSource(7)), 1)
	for it := 0; it < 200; it++ {
		outReal := g.disc.Forward(xReal, true)
		_, gradReal := nn.BCEWithLogitsLoss(outReal, onesLabels(200, 1))
		g.disc.Backward(gradReal)
		outNoise := g.disc.Forward(noise, true)
		_, gradNoise := nn.BCEWithLogitsLoss(outNoise, onesLabels(200, 0))
		g.disc.Backward(gradNoise)
		g.optD.Step()
	}
	// Forward reuses the discriminator's workspaces, so capture the first
	// mean before the second call overwrites the returned buffer.
	meanReal := g.disc.Forward(xReal, false).Mean()
	meanNoise := g.disc.Forward(noise, false).Mean()
	if meanReal <= meanNoise+1 {
		t.Fatalf("discriminator failed to separate fixed distributions: %v vs %v", meanReal, meanNoise)
	}
}

func TestGeneratorParamsUpdateDiscriminatorFrozenDuringGStep(t *testing.T) {
	tb := loanTable(t, 64)
	g := New(rand.New(rand.NewSource(8)), tb, DefaultConfig(Linear))
	dBefore := cloneParams(g.disc.Params())
	gBefore := cloneParams(g.gen.Params())
	g.TrainStep(tb)
	// Both change after a full step (D step + G step)...
	if !paramsChanged(dBefore, g.disc.Params()) {
		t.Fatal("discriminator did not update")
	}
	if !paramsChanged(gBefore, g.gen.Params()) {
		t.Fatal("generator did not update")
	}
	// ...and discriminator gradients are clean after the step.
	for _, p := range g.disc.Params() {
		if p.Grad.MaxAbs() != 0 {
			t.Fatal("stale discriminator gradients after TrainStep")
		}
	}
}

func cloneParams(ps []*nn.Param) []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(ps))
	for i, p := range ps {
		out[i] = p.Value.Clone()
	}
	return out
}

func paramsChanged(before []*tensor.Matrix, after []*nn.Param) bool {
	for i := range before {
		for j := range before[i].Data {
			if before[i].Data[j] != after[i].Value.Data[j] {
				return true
			}
		}
	}
	return false
}
