package gan

import (
	"math/rand"
	"runtime"
	"time"

	"silofuse/internal/nn"
	"silofuse/internal/obs"
	"silofuse/internal/tabular"
	"silofuse/internal/tensor"
)

// Backbone selects the generator/discriminator architecture family.
type Backbone int

const (
	// Linear is the CTGAN-flavoured MLP backbone (paper's GAN(linear)).
	Linear Backbone = iota
	// Conv is the CTAB-GAN-flavoured 1-D convolutional backbone
	// (paper's GAN(conv)).
	Conv
)

// Config holds GAN hyper-parameters. The paper uses four convolutional or
// linear layers with leaky ReLU and layer norm in the generator and the
// transposed architecture in the discriminator.
type Config struct {
	Backbone  Backbone
	LatentDim int
	Hidden    int
	LR        float64
	LeakAlpha float64
}

// DefaultConfig returns CPU-scaled defaults for the chosen backbone.
func DefaultConfig(b Backbone) Config {
	return Config{Backbone: b, LatentDim: 32, Hidden: 128, LR: 2e-4, LeakAlpha: 0.2}
}

// GAN is a centralized tabular GAN operating in the encoded feature space.
type GAN struct {
	Cfg Config
	Enc *tabular.Encoder
	// Rec, when non-nil, receives per-step loss/throughput telemetry from
	// Train (stage "gan"; the recorded loss is the generator loss).
	Rec *obs.Recorder

	gen   *nn.Sequential
	disc  *nn.Sequential
	optG  *nn.Adam
	optD  *nn.Adam
	rng   *rand.Rand
	width int
}

// New builds a GAN for the schema of train, fitting the feature encoder on
// it.
func New(rng *rand.Rand, train *tabular.Table, cfg Config) *GAN {
	enc := tabular.NewEncoder(train)
	width := enc.Width()
	g := &GAN{Cfg: cfg, Enc: enc, rng: rng, width: width}
	switch cfg.Backbone {
	case Conv:
		g.gen = buildConvGenerator(rng, cfg, width, enc.Spans)
		g.disc = buildConvDiscriminator(rng, cfg, width)
	default:
		g.gen = buildLinearGenerator(rng, cfg, width, enc.Spans)
		g.disc = buildLinearDiscriminator(rng, cfg, width)
	}
	g.optG = nn.NewAdam(g.gen.Params(), cfg.LR)
	g.optG.Beta1 = 0.5
	g.optG.ClipNorm = 5
	g.optD = nn.NewAdam(g.disc.Params(), cfg.LR)
	g.optD.Beta1 = 0.5
	g.optD.ClipNorm = 5
	return g
}

func buildLinearGenerator(rng *rand.Rand, cfg Config, width int, spans []tabular.Span) *nn.Sequential {
	return nn.NewSequential(
		nn.NewLinear(rng, cfg.LatentDim, cfg.Hidden), nn.NewLeakyReLU(cfg.LeakAlpha), nn.NewLayerNorm(cfg.Hidden),
		nn.NewLinear(rng, cfg.Hidden, cfg.Hidden), nn.NewLeakyReLU(cfg.LeakAlpha), nn.NewLayerNorm(cfg.Hidden),
		nn.NewLinear(rng, cfg.Hidden, cfg.Hidden), nn.NewLeakyReLU(cfg.LeakAlpha), nn.NewLayerNorm(cfg.Hidden),
		nn.NewLinear(rng, cfg.Hidden, width),
		newOutputActivation(spans),
	)
}

func buildLinearDiscriminator(rng *rand.Rand, cfg Config, width int) *nn.Sequential {
	return nn.NewSequential(
		nn.NewLinear(rng, width, cfg.Hidden), nn.NewLeakyReLU(cfg.LeakAlpha), nn.NewLayerNorm(cfg.Hidden),
		nn.NewLinear(rng, cfg.Hidden, cfg.Hidden), nn.NewLeakyReLU(cfg.LeakAlpha), nn.NewLayerNorm(cfg.Hidden),
		nn.NewLinear(rng, cfg.Hidden, cfg.Hidden), nn.NewLeakyReLU(cfg.LeakAlpha), nn.NewLayerNorm(cfg.Hidden),
		nn.NewLinear(rng, cfg.Hidden, 1),
	)
}

// buildConvGenerator upsamples a projected noise tensor with two transposed
// convolutions and maps it to the exact feature width with a final linear.
func buildConvGenerator(rng *rand.Rand, cfg Config, width int, spans []tabular.Span) *nn.Sequential {
	const c1, l0 = 8, 8                                  // start: 8 channels x length 8
	ct1 := nn.NewConvTranspose1D(rng, c1, c1/2, 4, 2, 1) // -> 4 x 16
	l1 := ct1.OutLen(l0)
	ct2 := nn.NewConvTranspose1D(rng, c1/2, 2, 4, 2, 1) // -> 2 x 32
	l2 := ct2.OutLen(l1)
	return nn.NewSequential(
		nn.NewLinear(rng, cfg.LatentDim, c1*l0), nn.NewLeakyReLU(cfg.LeakAlpha),
		ct1, nn.NewLeakyReLU(cfg.LeakAlpha), nn.NewLayerNorm(c1/2*l1),
		ct2, nn.NewLeakyReLU(cfg.LeakAlpha), nn.NewLayerNorm(2*l2),
		nn.NewLinear(rng, 2*l2, width),
		newOutputActivation(spans),
	)
}

// buildConvDiscriminator mirrors the generator: two strided convolutions
// over the (1, width) feature signal followed by a linear head.
func buildConvDiscriminator(rng *rand.Rand, cfg Config, width int) *nn.Sequential {
	cv1 := nn.NewConv1D(rng, 1, 4, 4, 2, 1)
	l1 := cv1.OutLen(width)
	cv2 := nn.NewConv1D(rng, 4, 8, 4, 2, 1)
	l2 := cv2.OutLen(l1)
	return nn.NewSequential(
		cv1, nn.NewLeakyReLU(cfg.LeakAlpha),
		cv2, nn.NewLeakyReLU(cfg.LeakAlpha), nn.NewLayerNorm(8*l2),
		nn.NewLinear(rng, 8*l2, 1),
	)
}

// TrainStep performs one discriminator update and one generator update on a
// real minibatch, returning the discriminator and generator losses.
func (g *GAN) TrainStep(real *tabular.Table) (dLoss, gLoss float64) {
	n := real.Rows()
	xReal := g.Enc.Transform(real)

	// Discriminator step: real -> 1, fake -> 0.
	z := tensor.New(n, g.Cfg.LatentDim).Randn(g.rng, 1)
	fake := g.gen.Forward(z, true)

	outReal := g.disc.Forward(xReal, true)
	lossReal, gradReal := nn.BCEWithLogitsLoss(outReal, onesLabels(n, 1))
	g.disc.Backward(gradReal)

	outFake := g.disc.Forward(fake, true)
	lossFake, gradFake := nn.BCEWithLogitsLoss(outFake, onesLabels(n, 0))
	g.disc.Backward(gradFake)
	g.optD.Step()
	dLoss = lossReal + lossFake

	// Generator step: fool the discriminator (non-saturating loss).
	z = tensor.New(n, g.Cfg.LatentDim).Randn(g.rng, 1)
	fake = g.gen.Forward(z, true)
	outFake = g.disc.Forward(fake, true)
	gLoss, gradFake = nn.BCEWithLogitsLoss(outFake, onesLabels(n, 1))
	gradG := g.disc.Backward(gradFake)
	g.optD.ZeroGrads() // the discriminator is frozen during the G step
	g.gen.Backward(gradG)
	g.optG.Step()
	return dLoss, gLoss
}

// Train runs iters alternating steps with minibatches of size batch and
// returns the final generator loss.
func (g *GAN) Train(train *tabular.Table, iters, batch int) float64 {
	if batch > train.Rows() {
		batch = train.Rows()
	}
	idx := make([]int, batch)
	var gLoss float64
	var ms0 runtime.MemStats
	if g.Rec != nil {
		runtime.ReadMemStats(&ms0)
	}
	for it := 0; it < iters; it++ {
		for i := range idx {
			idx[i] = g.rng.Intn(train.Rows())
		}
		var t0 time.Time
		if g.Rec != nil {
			t0 = time.Now()
		}
		_, gLoss = g.TrainStep(train.SelectRows(idx))
		if g.Rec != nil {
			g.Rec.TrainStep("gan", gLoss, batch, time.Since(t0))
		}
	}
	if g.Rec != nil {
		var ms1 runtime.MemStats
		runtime.ReadMemStats(&ms1)
		g.Rec.TrainAllocs("gan", iters, ms1.Mallocs-ms0.Mallocs, ms1.TotalAlloc-ms0.TotalAlloc)
	}
	return gLoss
}

// Sample draws n synthetic rows and decodes them into a table.
func (g *GAN) Sample(n int) (*tabular.Table, error) {
	z := tensor.New(n, g.Cfg.LatentDim).Randn(g.rng, 1)
	fake := g.gen.Forward(z, false)
	return g.Enc.Inverse(fake)
}

func onesLabels(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
