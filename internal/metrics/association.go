// Package metrics implements the paper's benchmark framework: the
// five-component resemblance score (Section V-B), the downstream-utility
// score, and the association matrices behind the Table V correlation-
// difference analysis.
package metrics

import (
	"math"

	"silofuse/internal/stats"
	"silofuse/internal/tabular"
	"silofuse/internal/tensor"
)

// AssociationMatrix computes the d×d mixed-type association matrix of a
// table: Pearson correlation for numeric–numeric pairs, Theil's U for
// categorical–categorical pairs (row given column), and the correlation
// ratio η for categorical–numeric pairs. The diagonal is 1.
func AssociationMatrix(t *tabular.Table) *tensor.Matrix {
	d := t.Schema.NumColumns()
	out := tensor.New(d, d)
	// Pre-extract columns once.
	numCols := make(map[int][]float64)
	catCols := make(map[int][]int)
	for j, c := range t.Schema.Columns {
		if c.Kind == tabular.Numeric {
			numCols[j] = t.NumColumn(j)
		} else {
			catCols[j] = t.CatColumn(j)
		}
	}
	for i := 0; i < d; i++ {
		out.Set(i, i, 1)
		for j := 0; j < d; j++ {
			if i == j {
				continue
			}
			ci, cj := t.Schema.Columns[i], t.Schema.Columns[j]
			switch {
			case ci.Kind == tabular.Numeric && cj.Kind == tabular.Numeric:
				out.Set(i, j, stats.Pearson(numCols[i], numCols[j]))
			case ci.Kind == tabular.Categorical && cj.Kind == tabular.Categorical:
				out.Set(i, j, stats.TheilsU(catCols[i], catCols[j], ci.Cardinality, cj.Cardinality))
			case ci.Kind == tabular.Categorical:
				out.Set(i, j, stats.CorrelationRatio(catCols[i], numCols[j], ci.Cardinality))
			default:
				out.Set(i, j, stats.CorrelationRatio(catCols[j], numCols[i], cj.Cardinality))
			}
		}
	}
	return out
}

// AssociationDifference returns the element-wise absolute difference of the
// two tables' association matrices — the quantity visualised in the paper's
// Table V heat maps — plus its mean.
func AssociationDifference(real, synth *tabular.Table) (*tensor.Matrix, float64) {
	a := AssociationMatrix(real)
	b := AssociationMatrix(synth)
	diff := tensor.New(a.Rows, a.Cols)
	for i := range diff.Data {
		diff.Data[i] = math.Abs(a.Data[i] - b.Data[i])
	}
	return diff, diff.Mean()
}
