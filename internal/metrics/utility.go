package metrics

import (
	"fmt"

	"silofuse/internal/gbdt"
	"silofuse/internal/stats"
	"silofuse/internal/tabular"
)

// UtilityConfig tunes the downstream-utility evaluation.
type UtilityConfig struct {
	Boost          gbdt.Params
	MaxTrainRows   int // cap on training rows per column model
	MaxCardinality int // skip categorical targets wider than this
	MaxColumns     int // 0 = evaluate every column as a target
}

// DefaultUtilityConfig returns the harness settings: every column is a
// target, very wide categorical columns (e.g. Churn's 2932-way surname) are
// skipped as they are for any per-class boosted model.
func DefaultUtilityConfig() UtilityConfig {
	p := gbdt.DefaultParams()
	p.NumRounds = 25
	return UtilityConfig{Boost: p, MaxTrainRows: 2000, MaxCardinality: 20}
}

// UtilityReport holds downstream performance of models trained on real and
// synthetic data (both evaluated on the same real hold-out) and the final
// utility score.
type UtilityReport struct {
	RealPerf  float64 // 90th percentile of per-column scores, real-trained
	SynthPerf float64 // same, synthetic-trained
	Score     float64 // 100·clip(SynthPerf/RealPerf, 0, 1)
	Columns   int     // number of target columns evaluated
}

// Utility measures train-on-synthetic/test-on-real downstream performance
// per Section V-B: for every (feasible) column, a GBDT predicts it from the
// remaining features; macro-F1 scores categorical targets and the D²
// absolute-error score numeric ones; per-dataset performance is the 90th
// percentile across columns, and utility is the synthetic/real ratio.
func Utility(realTrain, synth, realTest *tabular.Table, cfg UtilityConfig) (*UtilityReport, error) {
	targets := feasibleTargets(realTrain.Schema, cfg)
	if len(targets) == 0 {
		return nil, fmt.Errorf("metrics: no feasible target columns")
	}
	realScores := make([]float64, 0, len(targets))
	synthScores := make([]float64, 0, len(targets))
	for _, j := range targets {
		rs, err := columnScore(realTrain, realTest, j, cfg)
		if err != nil {
			return nil, fmt.Errorf("metrics: utility target %d (real): %w", j, err)
		}
		ss, err := columnScore(synth, realTest, j, cfg)
		if err != nil {
			return nil, fmt.Errorf("metrics: utility target %d (synth): %w", j, err)
		}
		realScores = append(realScores, rs)
		synthScores = append(synthScores, ss)
	}
	rep := &UtilityReport{
		RealPerf:  stats.Quantile(realScores, 0.9),
		SynthPerf: stats.Quantile(synthScores, 0.9),
		Columns:   len(targets),
	}
	base := rep.RealPerf
	if base < 0.05 {
		base = 0.05 // guard against degenerate real baselines
	}
	rep.Score = 100 * stats.Clamp(rep.SynthPerf/base, 0, 1)
	return rep, nil
}

// feasibleTargets returns the target column indexes to evaluate.
func feasibleTargets(s *tabular.Schema, cfg UtilityConfig) []int {
	var out []int
	for j, c := range s.Columns {
		if c.Kind == tabular.Categorical && cfg.MaxCardinality > 0 && c.Cardinality > cfg.MaxCardinality {
			continue
		}
		out = append(out, j)
		if cfg.MaxColumns > 0 && len(out) >= cfg.MaxColumns {
			break
		}
	}
	return out
}

// columnScore trains on `train` predicting column j and scores on `test`.
func columnScore(train, test *tabular.Table, j int, cfg UtilityConfig) (float64, error) {
	tr := train
	if cfg.MaxTrainRows > 0 && tr.Rows() > cfg.MaxTrainRows {
		tr = tr.Head(cfg.MaxTrainRows)
	}
	featIdx := make([]int, 0, tr.Schema.NumColumns()-1)
	for k := 0; k < tr.Schema.NumColumns(); k++ {
		if k != j {
			featIdx = append(featIdx, k)
		}
	}
	trFeatTable := tr.SelectColumns(featIdx)
	teFeatTable := test.SelectColumns(featIdx)
	enc := tabular.NewEncoder(trFeatTable)
	xTrain := enc.Transform(trFeatTable)
	xTest := enc.Transform(teFeatTable)

	col := tr.Schema.Columns[j]
	if col.Kind == tabular.Categorical {
		labels := tr.CatColumn(j)
		clf := gbdt.NewClassifier(cfg.Boost, col.Cardinality)
		if err := clf.Fit(xTrain, labels); err != nil {
			return 0, err
		}
		pred := clf.Predict(xTest)
		return stats.MacroF1(test.CatColumn(j), pred, col.Cardinality), nil
	}
	y := tr.NumColumn(j)
	reg := gbdt.NewRegressor(cfg.Boost)
	if err := reg.Fit(xTrain, y); err != nil {
		return 0, err
	}
	pred := reg.Predict(xTest)
	d2 := stats.D2AbsoluteError(test.NumColumn(j), pred)
	return stats.Clamp(d2, 0, 1), nil
}
