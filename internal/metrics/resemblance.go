package metrics

import (
	"fmt"
	"math"

	"silofuse/internal/gbdt"
	"silofuse/internal/stats"
	"silofuse/internal/tabular"
	"silofuse/internal/tensor"
)

// ResemblanceReport holds the five component scores (all in [0, 1]) and the
// composite resemblance score (0–100), mirroring Section V-B.
type ResemblanceReport struct {
	ColumnSimilarity      float64
	CorrelationSimilarity float64
	JSSimilarity          float64
	KSSimilarity          float64
	Propensity            float64
	Score                 float64 // mean of the five, ×100
}

// ResemblanceConfig tunes the metric computation.
type ResemblanceConfig struct {
	HistBins        int // bins for numeric JS histograms
	QuantilePoints  int // grid size for Q–Q column similarity
	PropensityRows  int // cap on rows per side for the discriminator
	PropensityBoost gbdt.Params
	Seed            int64
}

// DefaultResemblanceConfig returns the settings used by the experiment
// harness.
func DefaultResemblanceConfig() ResemblanceConfig {
	p := gbdt.DefaultParams()
	p.NumRounds = 25
	return ResemblanceConfig{HistBins: 20, QuantilePoints: 50, PropensityRows: 2000, PropensityBoost: p, Seed: 7}
}

// Resemblance computes the composite resemblance of synth to real. Both
// tables must share a schema.
func Resemblance(real, synth *tabular.Table, cfg ResemblanceConfig) (*ResemblanceReport, error) {
	if real.Schema.NumColumns() != synth.Schema.NumColumns() {
		return nil, fmt.Errorf("metrics: schema width mismatch %d vs %d", real.Schema.NumColumns(), synth.Schema.NumColumns())
	}
	r := &ResemblanceReport{}
	r.ColumnSimilarity = columnSimilarity(real, synth, cfg)
	r.CorrelationSimilarity = correlationSimilarity(real, synth)
	r.JSSimilarity = jsSimilarity(real, synth, cfg)
	r.KSSimilarity = ksSimilarity(real, synth)
	prop, err := propensitySimilarity(real, synth, cfg)
	if err != nil {
		return nil, err
	}
	r.Propensity = prop
	r.Score = 100 * (r.ColumnSimilarity + r.CorrelationSimilarity + r.JSSimilarity + r.KSSimilarity + r.Propensity) / 5
	return r, nil
}

// columnSimilarity: Q–Q correlation for numeric columns (clamped to [0,1]),
// 1−TVD of category frequencies for categorical columns, averaged.
func columnSimilarity(real, synth *tabular.Table, cfg ResemblanceConfig) float64 {
	total := 0.0
	for j, c := range real.Schema.Columns {
		if c.Kind == tabular.Numeric {
			qc := stats.QuantileCorrelation(real.NumColumn(j), synth.NumColumn(j), cfg.QuantilePoints)
			total += stats.Clamp(qc, 0, 1)
		} else {
			fr := stats.Frequencies(real.CatColumn(j), c.Cardinality)
			fs := stats.Frequencies(synth.CatColumn(j), c.Cardinality)
			total += 1 - stats.TVD(fr, fs)
		}
	}
	return total / float64(real.Schema.NumColumns())
}

// correlationSimilarity: 1 − normalised mean absolute difference of the
// association matrices. Pearson entries span [−1,1] (range 2); the rest
// span [0,1].
func correlationSimilarity(real, synth *tabular.Table) float64 {
	a := AssociationMatrix(real)
	b := AssociationMatrix(synth)
	d := real.Schema.NumColumns()
	if d < 2 {
		return 1
	}
	total := 0.0
	count := 0
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			if i == j {
				continue
			}
			rangeScale := 1.0
			if real.Schema.Columns[i].Kind == tabular.Numeric && real.Schema.Columns[j].Kind == tabular.Numeric {
				rangeScale = 2
			}
			total += math.Abs(a.At(i, j)-b.At(i, j)) / rangeScale
			count++
		}
	}
	return 1 - total/float64(count)
}

// jsSimilarity: 1 − Jensen–Shannon distance per column, averaged. Numeric
// columns are histogrammed over the union range.
func jsSimilarity(real, synth *tabular.Table, cfg ResemblanceConfig) float64 {
	total := 0.0
	for j, c := range real.Schema.Columns {
		var p, q []float64
		if c.Kind == tabular.Numeric {
			rv, sv := real.NumColumn(j), synth.NumColumn(j)
			lo, hi := rangeUnion(rv, sv)
			p = stats.Histogram(rv, lo, hi, cfg.HistBins)
			q = stats.Histogram(sv, lo, hi, cfg.HistBins)
		} else {
			p = stats.Frequencies(real.CatColumn(j), c.Cardinality)
			q = stats.Frequencies(synth.CatColumn(j), c.Cardinality)
		}
		total += 1 - stats.JSDistance(p, q)
	}
	return total / float64(real.Schema.NumColumns())
}

// ksSimilarity: 1 − KS statistic for numeric columns; the discrete analogue
// 1 − TVD for categorical ones.
func ksSimilarity(real, synth *tabular.Table) float64 {
	total := 0.0
	for j, c := range real.Schema.Columns {
		if c.Kind == tabular.Numeric {
			total += 1 - stats.KSStatistic(real.NumColumn(j), synth.NumColumn(j))
		} else {
			fr := stats.Frequencies(real.CatColumn(j), c.Cardinality)
			fs := stats.Frequencies(synth.CatColumn(j), c.Cardinality)
			total += 1 - stats.TVD(fr, fs)
		}
	}
	return total / float64(real.Schema.NumColumns())
}

// propensitySimilarity trains a GBDT discriminator to tell real from
// synthetic rows; the score is 1 − 2·mean|p − ½| (1 when indistinguishable).
func propensitySimilarity(real, synth *tabular.Table, cfg ResemblanceConfig) (float64, error) {
	nr, ns := real.Rows(), synth.Rows()
	if cfg.PropensityRows > 0 {
		if nr > cfg.PropensityRows {
			nr = cfg.PropensityRows
		}
		if ns > cfg.PropensityRows {
			ns = cfg.PropensityRows
		}
	}
	r := real.Head(nr)
	s := synth.Head(ns)
	enc := tabular.NewEncoder(r)
	x := tensor.VStack(enc.Transform(r), enc.Transform(s))
	labels := make([]int, nr+ns)
	for i := nr; i < nr+ns; i++ {
		labels[i] = 1
	}
	clf := gbdt.NewClassifier(cfg.PropensityBoost, 2)
	if err := clf.Fit(x, labels); err != nil {
		return 0, fmt.Errorf("metrics: propensity: %w", err)
	}
	probs := clf.PredictProba(x)
	mae := 0.0
	for i := 0; i < probs.Rows; i++ {
		mae += math.Abs(probs.At(i, 1) - 0.5)
	}
	mae /= float64(probs.Rows)
	return stats.Clamp(1-2*mae, 0, 1), nil
}

func rangeUnion(a, b []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range a {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	for _, v := range b {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	return lo, hi
}
