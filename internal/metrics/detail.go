package metrics

import (
	"fmt"
	"io"

	"silofuse/internal/stats"
	"silofuse/internal/tabular"
)

// ColumnDetail holds one column's individual marginal-fit scores — the
// per-column breakdown behind the aggregate resemblance score, useful for
// diagnosing which features a synthesizer struggles with.
type ColumnDetail struct {
	Name       string
	Kind       tabular.Kind
	Similarity float64 // Q–Q correlation (numeric) or 1−TVD (categorical)
	JS         float64 // 1 − Jensen–Shannon distance
	KS         float64 // 1 − KS statistic (numeric) / 1 − TVD (categorical)
}

// ColumnDetails computes the per-column breakdown of the marginal scores.
func ColumnDetails(real, synth *tabular.Table, cfg ResemblanceConfig) ([]ColumnDetail, error) {
	if real.Schema.NumColumns() != synth.Schema.NumColumns() {
		return nil, fmt.Errorf("metrics: schema width mismatch")
	}
	out := make([]ColumnDetail, 0, real.Schema.NumColumns())
	for j, c := range real.Schema.Columns {
		d := ColumnDetail{Name: c.Name, Kind: c.Kind}
		if c.Kind == tabular.Numeric {
			rv, sv := real.NumColumn(j), synth.NumColumn(j)
			d.Similarity = stats.Clamp(stats.QuantileCorrelation(rv, sv, cfg.QuantilePoints), 0, 1)
			lo, hi := rangeUnion(rv, sv)
			d.JS = 1 - stats.JSDistance(
				stats.Histogram(rv, lo, hi, cfg.HistBins),
				stats.Histogram(sv, lo, hi, cfg.HistBins))
			d.KS = 1 - stats.KSStatistic(rv, sv)
		} else {
			fr := stats.Frequencies(real.CatColumn(j), c.Cardinality)
			fs := stats.Frequencies(synth.CatColumn(j), c.Cardinality)
			tvd := stats.TVD(fr, fs)
			d.Similarity = 1 - tvd
			d.JS = 1 - stats.JSDistance(fr, fs)
			d.KS = 1 - tvd
		}
		out = append(out, d)
	}
	return out, nil
}

// PrintColumnDetails renders the breakdown as an aligned table.
func PrintColumnDetails(w io.Writer, details []ColumnDetail) {
	fmt.Fprintf(w, "%-12s %-12s %10s %10s %10s\n", "Column", "Kind", "Similarity", "JS", "KS")
	for _, d := range details {
		fmt.Fprintf(w, "%-12s %-12s %10.3f %10.3f %10.3f\n", d.Name, d.Kind, d.Similarity, d.JS, d.KS)
	}
}
