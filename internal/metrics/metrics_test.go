//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package metrics

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"silofuse/internal/datagen"
	"silofuse/internal/tabular"
	"silofuse/internal/tensor"
)

func cardioTables(t *testing.T) (real, same, other *tabular.Table) {
	t.Helper()
	spec, err := datagen.ByName("cardio")
	if err != nil {
		t.Fatal(err)
	}
	real = spec.Generate(1200, 1)
	same = spec.Generate(1200, 2) // fresh draw from the same distribution
	// A structurally different table: same schema, scrambled dependencies.
	otherSpec := spec
	otherSpec.NoiseStd = 3
	other = otherSpec.Generate(1200, 99)
	// Destroy correlation structure by shuffling each column independently.
	rng := rand.New(rand.NewSource(5))
	data := other.Data.Clone()
	for j := 0; j < data.Cols; j++ {
		col := data.Col(j)
		rng.Shuffle(len(col), func(a, b int) { col[a], col[b] = col[b], col[a] })
		data.SetCol(j, col)
	}
	other, err = tabular.NewTable(other.Schema, data)
	if err != nil {
		t.Fatal(err)
	}
	return real, same, other
}

func TestAssociationMatrixProperties(t *testing.T) {
	real, _, _ := cardioTables(t)
	m := AssociationMatrix(real)
	d := real.Schema.NumColumns()
	if m.Rows != d || m.Cols != d {
		t.Fatalf("shape %v", m)
	}
	for i := 0; i < d; i++ {
		if m.At(i, i) != 1 {
			t.Fatal("diagonal must be 1")
		}
		for j := 0; j < d; j++ {
			v := m.At(i, j)
			if v < -1-1e-9 || v > 1+1e-9 || math.IsNaN(v) {
				t.Fatalf("entry (%d,%d) = %v out of range", i, j, v)
			}
		}
	}
}

func TestAssociationDifferenceOrdering(t *testing.T) {
	real, same, other := cardioTables(t)
	_, dSame := AssociationDifference(real, same)
	_, dOther := AssociationDifference(real, other)
	if dSame >= dOther {
		t.Fatalf("same-distribution diff %v should beat shuffled diff %v", dSame, dOther)
	}
	if dSame > 0.15 {
		t.Fatalf("same-distribution association diff too large: %v", dSame)
	}
}

// TestResemblanceOrdering is the core sanity property: a fresh sample from
// the true distribution must score far higher than a column-shuffled,
// noise-inflated fake.
func TestResemblanceOrdering(t *testing.T) {
	real, same, other := cardioTables(t)
	cfg := DefaultResemblanceConfig()
	rSame, err := Resemblance(real, same, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rOther, err := Resemblance(real, other, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rSame.Score <= rOther.Score {
		t.Fatalf("resemblance ordering violated: same %v <= other %v", rSame.Score, rOther.Score)
	}
	if rSame.Score < 80 {
		t.Fatalf("true-distribution sample should score high: %v", rSame.Score)
	}
	for _, v := range []float64{rSame.ColumnSimilarity, rSame.CorrelationSimilarity, rSame.JSSimilarity, rSame.KSSimilarity, rSame.Propensity} {
		if v < 0 || v > 1 {
			t.Fatalf("component out of [0,1]: %v", v)
		}
	}
}

func TestResemblanceIdentityIsNear100(t *testing.T) {
	real, _, _ := cardioTables(t)
	cfg := DefaultResemblanceConfig()
	r, err := Resemblance(real, real, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Identical tables: everything except propensity is exactly 1, and the
	// discriminator should be almost unable to beat 50% (it sees duplicate
	// rows with contradictory labels).
	if r.ColumnSimilarity < 0.999 || r.JSSimilarity < 0.999 || r.KSSimilarity < 0.999 || r.CorrelationSimilarity < 0.999 {
		t.Fatalf("identity components should be 1: %+v", r)
	}
	if r.Score < 90 {
		t.Fatalf("identity resemblance %v", r.Score)
	}
}

func TestResemblanceSchemaMismatch(t *testing.T) {
	real, _, _ := cardioTables(t)
	sub := real.SelectColumns([]int{0, 1})
	if _, err := Resemblance(real, sub, DefaultResemblanceConfig()); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}

func TestUtilityOrdering(t *testing.T) {
	real, same, other := cardioTables(t)
	test := real.SelectRows(seq(800, 1200))
	train := real.SelectRows(seq(0, 800))
	cfg := DefaultUtilityConfig()
	cfg.Boost.NumRounds = 15
	cfg.MaxTrainRows = 800

	uSame, err := Utility(train, same, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	uOther, err := Utility(train, other, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if uSame.Score <= uOther.Score {
		t.Fatalf("utility ordering violated: same %v <= shuffled %v", uSame.Score, uOther.Score)
	}
	if uSame.Score < 70 {
		t.Fatalf("true-distribution utility too low: %v", uSame.Score)
	}
	if uSame.Columns != real.Schema.NumColumns() {
		t.Fatalf("expected all columns evaluated, got %d", uSame.Columns)
	}
}

func TestUtilitySkipsWideCategoricals(t *testing.T) {
	spec, err := datagen.ByName("churn") // has a 2932-cardinality column
	if err != nil {
		t.Fatal(err)
	}
	tb := spec.Generate(300, 3)
	cfg := DefaultUtilityConfig()
	cfg.Boost.NumRounds = 3
	cfg.MaxColumns = 4
	u, err := Utility(tb, tb, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if u.Columns > 4 {
		t.Fatalf("MaxColumns not applied: %d", u.Columns)
	}
}

func TestUtilityTrainOnSelfScores100(t *testing.T) {
	real, _, _ := cardioTables(t)
	train := real.SelectRows(seq(0, 600))
	test := real.SelectRows(seq(600, 1200))
	cfg := DefaultUtilityConfig()
	cfg.Boost.NumRounds = 10
	u, err := Utility(train, train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if u.Score != 100 {
		t.Fatalf("synth == real train should give 100: %v", u.Score)
	}
}

func TestRangeUnionDegenerate(t *testing.T) {
	lo, hi := rangeUnion([]float64{2, 2}, []float64{2})
	if !(hi > lo) {
		t.Fatal("degenerate range must be widened")
	}
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

func TestAssociationMatrixConstantColumn(t *testing.T) {
	s := tabular.MustSchema([]tabular.Column{
		{Name: "a", Kind: tabular.Numeric},
		{Name: "b", Kind: tabular.Numeric},
	})
	data := tensor.FromRows([][]float64{{1, 1}, {1, 2}, {1, 3}})
	tb, err := tabular.NewTable(s, data)
	if err != nil {
		t.Fatal(err)
	}
	m := AssociationMatrix(tb)
	if m.At(0, 1) != 0 {
		t.Fatalf("constant column should associate 0: %v", m.At(0, 1))
	}
}

func TestColumnDetails(t *testing.T) {
	real, same, _ := cardioTables(t)
	details, err := ColumnDetails(real, same, DefaultResemblanceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(details) != real.Schema.NumColumns() {
		t.Fatalf("details = %d", len(details))
	}
	for _, d := range details {
		for _, v := range []float64{d.Similarity, d.JS, d.KS} {
			if v < 0 || v > 1 {
				t.Fatalf("%s: score out of range: %+v", d.Name, d)
			}
		}
		// Fresh sample from the same distribution: high per-column fit.
		if d.JS < 0.7 {
			t.Fatalf("%s: JS too low for same-distribution sample: %v", d.Name, d.JS)
		}
	}
	var buf bytes.Buffer
	PrintColumnDetails(&buf, details)
	if !strings.Contains(buf.String(), "Similarity") {
		t.Fatal("printout incomplete")
	}
	// Mismatched schema errors.
	if _, err := ColumnDetails(real, real.SelectColumns([]int{0}), DefaultResemblanceConfig()); err == nil {
		t.Fatal("expected schema mismatch")
	}
}
