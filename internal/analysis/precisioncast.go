package analysis

import (
	"go/ast"
	"go/types"
)

// PrecisionCast confines float64<->float32 conversions to the precision
// boundary. The f32 compute tier and the precision-tiered wire codecs are
// only trustworthy if every narrowing (and the widening back) happens at an
// audited site: the silo/codec package (whose whole job is lossy framing,
// with the error accounted per message), the tensor conversion kernels, or
// a site annotated //silofuse:precision-ok with a one-line justification.
// A cast anywhere else is how double-rounding and silently lossy shortcuts
// creep into code that the bit-reproducibility story assumes is pure f64 —
// or pure f32 past the conversion point.
//
// Constant conversions (float32(1e-6), float32(math.Pi)) are exempt: the
// rounding happens once, at compile time, and is visible at the call site.
var PrecisionCast = &Analyzer{
	Name: "precisioncast",
	Doc:  "confine float64<->float32 conversions to the codec package or annotated sites",
	Run:  runPrecisionCast,
}

func runPrecisionCast(p *Pass) {
	// The codec package is the boundary: every conversion in it is the
	// product being shipped, with reconstruction error measured and
	// reported on the wire metrics.
	if p.Pkg.Name() == "codec" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := p.Info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			arg := call.Args[0]
			if av, ok := p.Info.Types[arg]; ok && av.Value != nil {
				return true // constant: rounded once at compile time
			}
			dst := floatKind(tv.Type)
			src := floatKind(p.Info.TypeOf(arg))
			var dir string
			switch {
			case dst == types.Float32 && src == types.Float64:
				dir = "float64->float32"
			case dst == types.Float64 && src == types.Float32:
				dir = "float32->float64"
			default:
				return true
			}
			if why, ok := p.Annot.Lookup(AnnotPrecisionOK, call.Pos()); ok {
				if why == "" {
					p.Report(call.Pos(), "silofuse:precision-ok annotation needs a one-line justification")
				}
				return true
			}
			p.Report(call.Pos(), "%s conversion outside the precision boundary; move it into internal/silo/codec or the tensor conversion kernels, or annotate //silofuse:precision-ok <why>", dir)
			return true
		})
	}
}

// floatKind returns the underlying basic kind of t when it is a float type,
// and types.Invalid otherwise.
func floatKind(t types.Type) types.BasicKind {
	if t == nil {
		return types.Invalid
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return types.Invalid
	}
	return b.Kind()
}
