package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. Almost every
// such comparison in numeric code wants a tolerance; the deliberate
// exceptions — the warm-vs-cold bitwise-parity tests that pin the
// zero-allocation refactors, and exact sentinel tests like `x == 0` on
// values that are set, not computed — carry a //silofuse:bitwise-ok
// annotation (function-level on parity tests, line-level elsewhere).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag exact floating-point ==/!= outside annotated parity code",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatExpr(p.Info, be.X) && !isFloatExpr(p.Info, be.Y) {
				return true
			}
			if p.Annot.Covers(AnnotBitwiseOK, be.Pos()) {
				return true
			}
			p.Report(be.OpPos, "exact floating-point %s comparison; use a tolerance or annotate //silofuse:bitwise-ok", be.Op)
			return true
		})
	}
}

func isFloatExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
