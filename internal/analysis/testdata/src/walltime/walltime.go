// Package tensor impersonates a deterministic package so the walltime
// analyzer applies: bare wall-clock reads are flagged, annotated ones pass,
// and an annotation without a justification is itself flagged.
package tensor

import "time"

func timed() time.Duration {
	t0 := time.Now()      // want "time.Now in deterministic package"
	return time.Since(t0) // want "time.Since in deterministic package"
}

// startupBanner may read the clock: the function-level annotation below
// covers its whole body.
//
//silofuse:walltime-ok one-shot startup banner, never on a training path
func startupBanner() time.Time {
	return time.Now()
}

func annotatedWithoutReason() time.Time {
	//silofuse:walltime-ok
	return time.Now() // want "annotation needs a one-line justification"
}
