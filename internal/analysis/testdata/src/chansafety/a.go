// Package silo impersonates the hot-path transport package to exercise the
// chansafety analyzer: close-then-send races through accessor helpers (the
// LocalBus.box shape), closed-signal receives, and the unbuffered-channel
// capacity rule that only fires in hot-path packages.
package silo

import "sync"

type bus struct {
	mu    sync.Mutex
	boxes map[string]chan int
}

// box returns the named inbox, creating it on first use.
func (b *bus) box(name string) chan int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ch, ok := b.boxes[name]; ok {
		return ch
	}
	ch := make(chan int, 8)
	b.boxes[name] = ch
	return ch
}

func (b *bus) send(v int) {
	b.box("a") <- v // want "send on channel boxes, which another path in this package closes"
}

func (b *bus) sendGuarded(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.box("a") <- v
}

func (b *bus) shutdown() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ch := range b.boxes {
		close(ch)
	}
}

type pipeline struct {
	out chan int
}

func (p *pipeline) emit(v int) {
	//silofuse:chan-ok the single producer emits strictly before it closes
	p.out <- v
}

func (p *pipeline) finish() {
	close(p.out) // want "close on channel out, which another path in this package sends"
}

type feed struct {
	updates chan int
}

func (f *feed) stop() { close(f.updates) }

func (f *feed) next() int {
	return <-f.updates // want "value receive from channel updates"
}

func (f *feed) nextOK() (int, bool) {
	v, ok := <-f.updates
	return v, ok
}

func (f *feed) wait() {
	<-f.updates // bare signal wait: closed means "done", which is the point
}

func makeChans() (chan int, chan int, chan struct{}, chan int) {
	a := make(chan int) // want "unbuffered make.chan. in hot-path package silo"
	b := make(chan int, 4)
	c := make(chan struct{}) //silofuse:unbuffered-ok close-only stop signal, never sent on
	//silofuse:unbuffered-ok
	d := make(chan int) // want "unbuffered-ok annotation needs a one-line justification"
	return a, b, c, d
}
