// Package codec pins the precisioncast analyzer's package exemption: a
// package named codec is the precision boundary itself, so its conversions
// never need annotations. No want comments — any diagnostic here is a
// fixture failure.
package codec

func encode(src []float64, dst []float32) {
	for i, v := range src {
		dst[i] = float32(v)
	}
}

func decode(src []float32, dst []float64) {
	for i, v := range src {
		dst[i] = float64(v)
	}
}
