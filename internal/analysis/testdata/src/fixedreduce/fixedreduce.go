// Package diffusion impersonates a reduce-bearing package so both halves
// of the fixedreduce analyzer apply: annotated reduce bodies may not
// contain order-unstable constructs, and Reduce-named functions must carry
// the annotation.
package diffusion

// ReduceNaked lacks the annotation the coverage rule demands.
func ReduceNaked(dst, src []float64) { // want "reduction ReduceNaked is missing the //silofuse:fixedreduce annotation"
	for i := range dst {
		dst[i] += src[i]
	}
}

// reduceAscending is a well-formed fold: fixed shard count, ascending
// order, one trailing scale.
//
//silofuse:fixedreduce
func reduceAscending(acc []float64, parts [][]float64) {
	for s := 0; s < len(parts); s++ {
		for i := range acc {
			acc[i] += parts[s][i]
		}
	}
	inv := 1 / float64(len(parts))
	for i := range acc {
		acc[i] *= inv
	}
}

// reduceUnstable claims the contract but folds in every order-unstable way
// the analyzer recognises.
//
//silofuse:fixedreduce
func reduceUnstable(acc []float64, byShard map[int][]float64, ch chan []float64) {
	for _, g := range byShard { // want "map iteration folds in random order in fixedreduce function reduceUnstable"
		for i := range acc {
			acc[i] += g[i]
		}
	}
	done := make(chan float64, 1)
	go func() { // want "go statement makes accumulation order scheduling-dependent in fixedreduce function reduceUnstable" "goroutine has no visible termination path"
		done <- acc[0]
	}()
	acc[0] = <-done
	select { // want "select folds in channel-ready order in fixedreduce function reduceUnstable"
	case g := <-ch:
		acc[0] += g[0]
	default:
	}
	for i := len(acc) - 1; i >= 0; i-- { // want "descending loop inverts the fold order in fixedreduce function reduceUnstable"
		acc[i] *= 0.5
	}
}

// SendReduced carries a reduced update but is not an accumulation site: the
// naming rule keys on the Reduce*/reduce* prefix, so the transport family
// stays out of scope.
func SendReduced(ch chan []float64, u []float64) {
	ch <- u
}
