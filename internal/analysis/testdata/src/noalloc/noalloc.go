// Package nn impersonates a kernel package so both halves of the noalloc
// analyzer apply: annotated bodies may not contain allocating constructs,
// and exported *Into kernels must carry the annotation.
package nn

type pair struct{ x, y float64 }

// ScaleInto lacks the annotation the kernel coverage rule demands.
func ScaleInto(dst, src []float64, s float64) { // want "exported kernel ScaleInto is missing the //silofuse:noalloc annotation"
	for i := range src {
		dst[i] = src[i] * s
	}
}

// AxpyInto is a well-formed kernel: annotated, and its body only writes
// through preallocated slices.
//
//silofuse:noalloc
func AxpyInto(dst, x []float64, a float64) {
	for i := range x {
		dst[i] += a * x[i]
	}
}

// leaky claims the contract but violates it in every recognised way.
//
//silofuse:noalloc
func leaky(dst []float64, s string) []float64 {
	tmp := make([]float64, 4)          // want "make allocates in noalloc function leaky"
	dst = append(dst, tmp...)          // want "append allocates in noalloc function leaky"
	p := pair{x: 1, y: 2}              // want "composite literal allocates in noalloc function leaky"
	f := func() float64 { return p.x } // want "closure allocates in noalloc function leaky"
	s += "!"                           // want "string concatenation allocates in noalloc function leaky"
	_ = s
	dst[0] = f()
	return dst
}

// grow is un-annotated cold-path growth: allocation here is fine.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	return buf[:n]
}
