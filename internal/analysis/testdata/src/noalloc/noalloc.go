// Package nn impersonates a kernel package so all three halves of the
// noalloc analyzer apply: annotated bodies may not contain allocating
// constructs or profile-capture calls, and exported *Into kernels must
// carry the annotation.
package nn

import "runtime/pprof"

type pair struct{ x, y float64 }

// ScaleInto lacks the annotation the kernel coverage rule demands.
func ScaleInto(dst, src []float64, s float64) { // want "exported kernel ScaleInto is missing the //silofuse:noalloc annotation"
	for i := range src {
		dst[i] = src[i] * s
	}
}

// AxpyInto is a well-formed kernel: annotated, and its body only writes
// through preallocated slices.
//
//silofuse:noalloc
func AxpyInto(dst, x []float64, a float64) {
	for i := range x {
		dst[i] += a * x[i]
	}
}

// leaky claims the contract but violates it in every recognised way.
//
//silofuse:noalloc
func leaky(dst []float64, s string) []float64 {
	tmp := make([]float64, 4)          // want "make allocates in noalloc function leaky"
	dst = append(dst, tmp...)          // want "append allocates in noalloc function leaky"
	p := pair{x: 1, y: 2}              // want "composite literal allocates in noalloc function leaky"
	f := func() float64 { return p.x } // want "closure allocates in noalloc function leaky"
	s += "!"                           // want "string concatenation allocates in noalloc function leaky"
	_ = s
	dst[0] = f()
	return dst
}

// grow is un-annotated cold-path growth: allocation here is fine.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	return buf[:n]
}

// recorder mimics the telemetry recorder's phase hooks by name; the
// profile-capture rule keys on the ProfilePhase* method-name prefix.
type recorder struct{ n int }

func (r recorder) ProfilePhaseStart(phase string) {}

// profiled claims the contract but snapshots profiles mid-kernel: capture
// belongs at phase boundaries in the orchestration layer, never inside the
// hot loop it measures.
//
//silofuse:noalloc
func profiled(dst []float64, rec recorder) {
	_ = pprof.StartCPUProfile(nil)  // want "profile capture StartCPUProfile in noalloc function profiled"
	rec.ProfilePhaseStart("kernel") // want "profile capture ProfilePhaseStart in noalloc function profiled"
	for i := range dst {
		dst[i] = 0
	}
	pprof.StopCPUProfile() // want "profile capture StopCPUProfile in noalloc function profiled"
}

// hot is annotated and calls only plain helpers: no report.
//
//silofuse:noalloc
func hot(dst []float64) {
	for i := range dst {
		dst[i] *= 2
	}
}
