// Package floateq exercises the floateq analyzer: exact float comparisons
// are flagged unless annotated bitwise-ok (function-level for parity
// checks, line-level for sentinel comparisons). Integer comparisons are
// out of scope.
package floateq

func closeEnough(x, y float64) bool {
	return x == y // want "exact floating-point == comparison"
}

func changed(x, y float32) bool {
	return x != y // want "exact floating-point != comparison"
}

// bitwiseParity pins warm-vs-cold agreement; exact comparison is the point.
//
//silofuse:bitwise-ok warm and cold paths must agree bit for bit
func bitwiseParity(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func zeroSentinel(x float64) bool {
	return x == 0 //silofuse:bitwise-ok zero is assigned, never computed
}

func intsAreFine(a, b int) bool {
	return a == b
}
