// Package precisioncast exercises the precisioncast analyzer: runtime
// float64<->float32 conversions outside the codec package must carry a
// //silofuse:precision-ok annotation with a justification. Constant and
// integer conversions are out of scope.
package precisioncast

func narrow(x float64) float32 {
	return float32(x) // want "float64->float32 conversion outside the precision boundary"
}

func widen(y float32) float64 {
	return float64(y) // want "float32->float64 conversion outside the precision boundary"
}

func annotated(x float64) float32 {
	return float32(x) //silofuse:precision-ok quantised wire value, error accounted upstream
}

func missingWhy(x float64) float32 {
	//silofuse:precision-ok
	return float32(x) // want "silofuse:precision-ok annotation needs a one-line justification"
}

// convertKernel is a dedicated conversion kernel: the function-level
// annotation covers every cast in the body.
//
//silofuse:precision-ok dedicated conversion kernel, the boundary itself
func convertKernel(dst []float32, src []float64) {
	for i, v := range src {
		dst[i] = float32(v)
	}
}

func constsAndIntsAreFine(n int) float32 {
	_ = float64(n)
	const pi = 3.14159
	return float32(pi) + float32(n)
}

type celsius float64

func namedTypesCount(c celsius) float32 {
	return float32(c) // want "float64->float32 conversion outside the precision boundary"
}
