// Package maprange exercises the maprange analyzer: map iteration feeding
// ordered output (appends, writers) is flagged unless the enclosing function
// sorts; order-independent bodies are fine.
package maprange

import (
	"fmt"
	"io"
	"sort"
)

func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration appends to a slice in random order"
		keys = append(keys, k)
	}
	return keys
}

func printUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m { // want "map iteration writes to an ordered sink"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// keysSorted follows the repo idiom — collect, sort, emit — so the append
// inside the range is fine.
func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sum accumulates an order-independent reduction; no ordered sink.
func sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}
