// Package profile impersonates the phase-profiler package so the
// nilrecorder analyzer applies to it: a nil *PhaseProfiler means
// "profiling off", so every exported pointer-receiver method must begin
// with a nil-receiver guard, exactly like the obs recorder's handles.
package profile

// PhaseProfiler mirrors the real profiler's nil-off contract.
type PhaseProfiler struct{ n int }

// Start begins with the guard-as-first-statement form.
func (p *PhaseProfiler) Start(phase string) {
	if p == nil {
		return
	}
	p.n++
}

// Enabled is the single-return nil-test form.
func (p *PhaseProfiler) Enabled() bool { return p != nil }

// Count forgets the guard and would panic with profiling off.
func (p *PhaseProfiler) Count() int { // want "exported method Count does not begin with a nil-receiver guard"
	return p.n
}

// snapshot is unexported; internal call sites are reached only through
// guarded exported methods.
func (p *PhaseProfiler) snapshot() int { return p.n }
