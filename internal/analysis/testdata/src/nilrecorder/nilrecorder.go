// Package obs impersonates the telemetry package so the nilrecorder
// analyzer applies: every exported pointer-receiver method must begin with
// a nil-receiver guard.
package obs

// Recorder mirrors the real obs.Recorder contract: nil means telemetry off.
type Recorder struct{ n int }

// Inc begins with the guard-as-first-statement form.
func (r *Recorder) Inc() {
	if r == nil {
		return
	}
	r.n++
}

// Enabled is the single-return nil-test form.
func (r *Recorder) Enabled() bool { return r != nil }

// Count forgets the guard and would panic on a disabled recorder.
func (r *Recorder) Count() int { // want "exported method Count does not begin with a nil-receiver guard"
	return r.n
}

// Snapshot copies the value receiver; calling it on nil cannot panic.
func (r Recorder) Snapshot() int { return r.n }

// bump is unexported; internal call sites are reached only through guarded
// exported methods.
func (r *Recorder) bump() { r.n++ }
