// Package silo impersonates the transport package so both determinism
// analyzers apply to retry logic: a wall-clock retry backoff and
// global-rand jitter — the classic non-deterministic retry loop — are
// flagged, while the resilient-bus idiom (backoff as a pure function of the
// attempt number, jitter from a seeded stream) passes.
package silo

import (
	"math/rand"
	"time"
)

// wallClockBackoff is the banned idiom: retry timing read from the clock
// makes fault schedules — and therefore recovered runs — irreproducible.
func wallClockBackoff(deadline time.Time) time.Duration {
	start := time.Now()                  // want "time.Now in deterministic package"
	if time.Since(start) > time.Second { // want "time.Since in deterministic package"
		return 0
	}
	jitter := time.Duration(rand.Intn(1000)) * time.Millisecond // want "rand.Intn draws from the process-global source"
	return deadline.Sub(start) + jitter
}

// deterministicBackoff is the approved idiom: the wait is a pure function
// of the attempt number, and any jitter comes from a stream seeded by the
// message identity — retry timing never perturbs the replayed schedule.
func deterministicBackoff(base time.Duration, attempt int, seed int64) time.Duration {
	d := base << uint(attempt)
	rng := rand.New(rand.NewSource(seed + int64(attempt)))
	return d + time.Duration(rng.Intn(3))*time.Millisecond
}
