// Package seededrand exercises the seededrand analyzer: draws from the
// process-global math/rand source and wall-clock-seeded sources are flagged;
// explicitly seeded *rand.Rand streams are not.
package seededrand

import (
	"math/rand"
	"time"
)

func globalDraws() float64 {
	n := rand.Intn(10)                 // want "rand.Intn draws from the process-global source"
	f := rand.Float64()                // want "rand.Float64 draws from the process-global source"
	rand.Shuffle(n, func(i, j int) {}) // want "rand.Shuffle draws from the process-global source"
	return f
}

func wallClockSeed() *rand.Rand {
	src := rand.NewSource(time.Now().UnixNano()) // want "rand source seeded from the wall clock"
	return rand.New(src)
}

// seededStream is the approved idiom: an explicit experiment seed, with all
// draws going through methods on the seeded stream.
func seededStream(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(4, func(i, j int) {})
	return rng.Float64()
}
