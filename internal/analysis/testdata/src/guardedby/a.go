// Package guardedby exercises the mutex-discipline analyzer: annotated
// field access, //silofuse:locked helpers, constructor and address-of
// exemptions, unlock pairing, lock-copy detection, and malformed
// annotations.
package guardedby

import "sync"

type counterBox struct {
	mu sync.Mutex
	//silofuse:guardedby mu
	n     int
	total int //silofuse:guardedby mu
	name  string
}

func (b *counterBox) good() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
	return b.total
}

func (b *counterBox) bad() int {
	b.n++          // want "access to counterBox.n without holding mu"
	return b.total // want "access to counterBox.total without holding mu"
}

func (b *counterBox) unguardedField() string {
	return b.name // unannotated fields are free
}

// bump runs with mu already held at every call site.
//
//silofuse:locked mu
func (b *counterBox) bump() { b.n++ }

//silofuse:locked
func (b *counterBox) badLocked() { // want "locked annotation on badLocked needs a mutex field name"
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func newBox() *counterBox {
	b := &counterBox{}
	b.n = 1 // fresh object: nobody else can see it yet
	return b
}

func (b *counterBox) leak() {
	b.mu.Lock() // want "mu.Lock in leak has no matching Unlock"
	b.n++
}

type rwBox struct {
	rw sync.RWMutex
	//silofuse:guardedby rw
	v int
}

func (b *rwBox) rleak() int {
	b.rw.RLock() // want "rw.RLock in rleak has no matching RUnlock"
	return b.v
}

func (b *rwBox) read() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.v
}

type badGuard struct {
	//silofuse:guardedby missing
	x int // want "is not a field of struct badGuard"
}

type emptyGuard struct {
	mu sync.Mutex
	//silofuse:guardedby
	y int // want "guardedby annotation on emptyGuard.y needs a mutex field name"
}

type notMutex struct {
	wg sync.WaitGroup
	//silofuse:guardedby wg
	z int // want "guardedby guard notMutex.wg is not a sync.Mutex or sync.RWMutex"
}

func passByValue(mu sync.Mutex) { // want "parameter of passByValue carries a sync primitive by value"
	mu.Lock() // want "mu.Lock in passByValue has no matching Unlock"
}

func passPointer(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

func copyBox(b *counterBox) {
	cp := *b // want "assignment in copyBox copies a value containing a sync primitive"
	_ = cp
}
