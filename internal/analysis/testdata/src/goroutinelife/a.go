// Package goroutinelife exercises the goroutine-termination analyzer: every
// go statement needs a visible stop signal (channel receive or range), a
// WaitGroup Add/Done pair, or a fire-and-forget justification.
package goroutinelife

import "sync"

func work() {}

func leaky() {
	go func() { // want "goroutine has no visible termination path"
		for {
			work()
		}
	}()
}

func stoppable(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

func tracked() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func untracked() {
	var wg sync.WaitGroup
	go func() { // want "goroutine has no visible termination path"
		defer wg.Done()
		work()
	}()
}

func ranged(jobs chan int) {
	go consumer(jobs) // named same-package worker: range over a closable queue
}

func consumer(jobs chan int) {
	for range jobs {
	}
}

func opaque(f func()) {
	go f() // want "go statement spawns a function this analyzer cannot see into"
}

// justified pumps metrics for the life of the process.
//
//silofuse:fire-and-forget metrics flusher runs until process exit by design
func justified() {
	go func() {
		for {
			work()
		}
	}()
}

func unjustified() {
	//silofuse:fire-and-forget
	go func() { // want "fire-and-forget annotation needs a one-line justification"
		for {
			work()
		}
	}()
}
