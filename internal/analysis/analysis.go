// Package analysis is silofuse's source-level invariant checker: a small,
// pure-stdlib (go/parser, go/ast, go/types, go/importer — no x/tools)
// analyzer framework plus the repo-specific analyzers behind the
// silofuse-vet command.
//
// The paper's evaluation assumes bit-reproducible runs at a fixed seed, and
// the zero-allocation hot path is otherwise guaranteed only by after-the-fact
// runtime tests. The analyzers here reject the patterns that silently break
// those stories — wall-clock reads in deterministic packages, globally seeded
// randomness, allocating constructs inside //silofuse:noalloc kernels,
// unsorted map iteration feeding ordered output, unguarded nil receivers in
// the telemetry layer, exact float comparisons outside blessed
// bitwise-parity tests, and float64<->float32 conversions outside the
// audited precision boundary — at analysis time, before any experiment runs.
//
// A second family enforces concurrency discipline, which the race detector
// can only catch probabilistically: //silofuse:guardedby mutex annotations
// on struct fields (guardedby), termination paths for every go statement
// (goroutinelife), and close/send/receive contracts plus hot-path channel
// capacity (chansafety).
//
// Source files opt out of individual checks with annotation comments
// (//silofuse:noalloc, //silofuse:walltime-ok, //silofuse:bitwise-ok,
// //silofuse:precision-ok, //silofuse:locked, //silofuse:fire-and-forget,
// //silofuse:unbuffered-ok, //silofuse:chan-ok); see the Annotations type
// for placement rules.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// Diagnostic is one finding: a position, the analyzer that produced it, and
// a human-readable message. String renders the driver's canonical
// file:line:col: analyzer: message form.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string // short lowercase identifier, e.g. "walltime"
	Doc  string // one-line summary of what the analyzer enforces
	Run  func(*Pass)
}

// Pass carries everything an analyzer needs to inspect one package: the
// parsed syntax, the type-checked package and its types.Info, and the
// package's annotation index. Analyzers report findings through Report.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Annot    *Annotations

	diags *[]Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes each analyzer over each package and returns every finding
// sorted by file, line, column, then analyzer name, so output and tests are
// deterministic regardless of package traversal order.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	diags, _ := RunTimed(analyzers, pkgs)
	return diags
}

// Stat aggregates one analyzer's cost and yield across a RunTimed call, so
// the lint driver can surface analyzer regressions (cost in wall-time,
// noise in finding counts) without profiling.
type Stat struct {
	Name     string
	Findings int
	Elapsed  time.Duration
}

// RunTimed is Run plus per-analyzer stats, ordered like the analyzers slice.
func RunTimed(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, []Stat) {
	var diags []Diagnostic
	stats := make([]Stat, len(analyzers))
	for i, a := range analyzers {
		stats[i].Name = a.Name
	}
	for _, pkg := range pkgs {
		for i, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Syntax,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Annot:    pkg.Annot,
				diags:    &diags,
			}
			before := len(diags)
			start := time.Now()
			a.Run(pass)
			stats[i].Elapsed += time.Since(start)
			stats[i].Findings += len(diags) - before
		}
	}
	sortDiags(diags)
	return diags, stats
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// All returns the full silofuse analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		SeededRand,
		Walltime,
		NoAlloc,
		MapRange,
		NilRecorder,
		FloatEq,
		PrecisionCast,
		GuardedBy,
		GoroutineLife,
		ChanSafety,
		FixedReduce,
	}
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil when the callee is not a named
// function (builtin, conversion, func-typed variable, ...).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// isPkgFunc reports whether f is the package-level function pkgPath.name
// (not a method).
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && f.Name() == name
}

// enclosingFunc returns the innermost FuncDecl in file whose body spans pos,
// or nil for positions outside any function declaration.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
