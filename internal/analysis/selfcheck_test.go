package analysis

import (
	"path/filepath"
	"testing"
)

// TestRepoSelfCheck runs the full analyzer suite over this repository and
// requires a clean tree — the same gate `make lint` applies. Every invariant
// the analyzers encode (no global randomness, no wall-clock reads in
// deterministic packages, annotated allocation-free kernels, sorted map
// emission, nil-safe telemetry, tolerance-based float comparison) must hold
// in the shipped source, so a change that breaks one fails here before it
// reaches CI. Removing a //silofuse:noalloc annotation from any *Into kernel
// also fails here, through the noalloc coverage rule.
func TestRepoSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading module at %s: %v", root, err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from %s; wrong root?", len(pkgs), root)
	}
	diags := Run(All(), pkgs)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
