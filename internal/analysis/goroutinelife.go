package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineLife requires every go statement in non-test code to have a
// visible termination path, so a growing fleet of serve/shard workers
// cannot silently accumulate leaked goroutines. A spawn is accepted when
// the spawned body (a func literal, or a same-package function the
// analyzer can resolve) either
//
//   - receives from a channel (a done/stop select, a context.Done wait, or
//     ranging over a work channel that close() terminates), or
//   - calls sync.WaitGroup.Done while a WaitGroup.Add appears earlier in
//     the spawning function — the Add-before-go, defer-Done-inside shape;
//
// otherwise the go statement must carry //silofuse:fire-and-forget <why>
// with a one-line justification. Spawns of functions the analyzer cannot
// see into (other packages, func-typed values) need the annotation too:
// lifetime that cannot be audited must at least be argued for.
var GoroutineLife = &Analyzer{
	Name: "goroutinelife",
	Doc:  "require every go statement to have a visible termination path or a fire-and-forget justification",
	Run:  runGoroutineLife,
}

func runGoroutineLife(p *Pass) {
	decls := funcDecls(p)
	for _, f := range p.Files {
		fname := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(fname, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(p, decls, fd, g)
				return true
			})
		}
	}
}

func checkGoStmt(p *Pass, decls map[*types.Func]*ast.FuncDecl, fd *ast.FuncDecl, g *ast.GoStmt) {
	if arg, ok := p.Annot.Lookup(AnnotFireAndForget, g.Pos()); ok {
		if arg == "" {
			p.Report(g.Pos(), "fire-and-forget annotation needs a one-line justification")
		}
		return
	}
	body := spawnedBody(p, decls, g.Call)
	if body == nil {
		p.Report(g.Pos(), "go statement spawns a function this analyzer cannot see into; justify with //silofuse:fire-and-forget <why> or spawn a package-local function")
		return
	}
	if receivesFromChannel(p, body) {
		return
	}
	if hasWaitGroupCall(p, body, "Done") && waitGroupAddBefore(p, fd, g.Pos()) {
		return
	}
	p.Report(g.Pos(), "goroutine has no visible termination path (no channel receive, no WaitGroup Add/Done pair); justify with //silofuse:fire-and-forget <why>")
}

// spawnedBody resolves the body the go statement runs: a func literal's own
// body, or the declaration of a same-package function or method.
func spawnedBody(p *Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := calleeFunc(p.Info, call); fn != nil {
		if fd := decls[fn]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// receivesFromChannel reports whether body contains a channel receive
// expression or a range over a channel — the shapes a stop signal or a
// closed work queue terminates.
func receivesFromChannel(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// hasWaitGroupCall reports whether body calls the named sync.WaitGroup
// method (Done, Wait, Add) anywhere, deferred or not.
func hasWaitGroupCall(p *Pass, body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupCall(p.Info, call, name) {
			found = true
		}
		return !found
	})
	return found
}

// waitGroupAddBefore reports whether a WaitGroup.Add call appears before pos
// in the spawning function, pairing the spawned body's Done.
func waitGroupAddBefore(p *Pass, fd *ast.FuncDecl, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && call.Pos() < pos && isWaitGroupCall(p.Info, call, "Add") {
			found = true
		}
		return !found
	})
	return found
}

// isWaitGroupCall reports whether call invokes sync.WaitGroup's method of
// the given name.
func isWaitGroupCall(info *types.Info, call *ast.CallExpr, name string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" || f.Name() != name {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() != nil && namedSyncType(sig.Recv().Type()) == "WaitGroup"
}
