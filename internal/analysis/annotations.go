package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation directives recognised in source comments. A directive is a
// comment line of the form
//
//	//silofuse:<name> [justification...]
//
// (no space after //, like other Go tool directives, so gofmt leaves it
// alone). Placement decides scope:
//
//   - in a function's doc comment: covers the whole function body;
//   - on its own line inside a body: covers the next source line;
//   - trailing a statement: covers that line;
//   - in the file's package doc comment: covers the whole file.
const (
	// AnnotNoAlloc marks a function as a steady-state hot-path kernel: its
	// body must stay free of allocating constructs (make/append/new,
	// composite literals, closures, string concatenation).
	AnnotNoAlloc = "noalloc"
	// AnnotWalltimeOK exempts a wall-clock read in a deterministic package.
	// It requires a justification string.
	AnnotWalltimeOK = "walltime-ok"
	// AnnotBitwiseOK exempts an exact float comparison — the warm-vs-cold
	// bitwise-parity tests and deliberate sentinel comparisons.
	AnnotBitwiseOK = "bitwise-ok"
	// AnnotPrecisionOK exempts a float64<->float32 conversion outside the
	// blessed precision boundary (the silo/codec package and the tensor
	// conversion kernels). It requires a justification string.
	AnnotPrecisionOK = "precision-ok"
	// AnnotGuardedBy declares, on a struct field's line (trailing or the
	// line above), the sibling mutex field that must be held around every
	// access of the field: //silofuse:guardedby <mu>. The argument is the
	// mutex field's name and is required; the named field must exist in the
	// same struct and be a sync.Mutex or sync.RWMutex.
	AnnotGuardedBy = "guardedby"
	// AnnotLocked marks, in a function's doc comment, that the function is
	// only ever called with the named mutex already held
	// (//silofuse:locked <mu>) — the escape hatch for helpers that touch
	// guarded fields without locking themselves. The mutex name is required.
	AnnotLocked = "locked"
	// AnnotFireAndForget justifies a go statement with no visible
	// termination path (no stop-channel select, no WaitGroup tracking):
	// //silofuse:fire-and-forget <why>. The justification is required.
	AnnotFireAndForget = "fire-and-forget"
	// AnnotUnbufferedOK justifies an unbuffered make(chan T) in a hot-path
	// package, where a rendezvous channel stalls the sender until a receiver
	// arrives. It requires a justification string.
	AnnotUnbufferedOK = "unbuffered-ok"
	// AnnotChanOK exempts a chansafety close/send/receive finding — a
	// close-then-send pair or closed-channel receive whose safety argument
	// lives outside what the analyzer can see. It requires a justification.
	AnnotChanOK = "chan-ok"
	// AnnotFixedReduce marks a function as an all-reduce accumulation site:
	// its body must fold contributions in a fixed ascending order — no map
	// ranges, go statements, selects, or descending loops (see the
	// fixedreduce analyzer).
	AnnotFixedReduce = "fixedreduce"
)

const annotPrefix = "silofuse:"

// annotEntry is one parsed directive occurrence.
type annotEntry struct {
	name     string
	arg      string // justification text after the directive name, trimmed
	line     int    // line the comment sits on
	trailing bool   // shares its line with code (covers that line), vs a standalone comment line (covers the next)
}

// funcRange is a line span covered by a function-level directive.
type funcRange struct {
	name       string
	arg        string
	start, end int
}

// Annotations indexes every //silofuse: directive of one package, keyed by
// file name as recorded in the FileSet.
type Annotations struct {
	fset  *token.FileSet
	lines map[string][]annotEntry // line-scoped directives per file
	funcs map[string][]funcRange  // function-scoped directives per file
	files map[string][]annotEntry // file-scoped directives per file
}

// parseDirective splits a comment into a directive name and argument, or
// returns ok=false for ordinary comments.
func parseDirective(c *ast.Comment) (name, arg string, ok bool) {
	text, found := strings.CutPrefix(c.Text, "//"+annotPrefix)
	if !found {
		return "", "", false
	}
	name, arg, _ = strings.Cut(text, " ")
	return strings.TrimSpace(name), strings.TrimSpace(arg), name != ""
}

// CollectAnnotations builds the annotation index for a package's files.
func CollectAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{
		fset:  fset,
		lines: make(map[string][]annotEntry),
		funcs: make(map[string][]funcRange),
		files: make(map[string][]annotEntry),
	}
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		codeLines := codeLineSet(fset, f)
		docComments := make(map[*ast.CommentGroup]bool)
		if f.Doc != nil {
			docComments[f.Doc] = true
			for _, c := range f.Doc.List {
				if name, arg, ok := parseDirective(c); ok {
					a.files[fname] = append(a.files[fname], annotEntry{name: name, arg: arg})
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			docComments[fd.Doc] = true
			for _, c := range fd.Doc.List {
				if name, arg, ok := parseDirective(c); ok {
					a.funcs[fname] = append(a.funcs[fname], funcRange{
						name:  name,
						arg:   arg,
						start: fset.Position(fd.Pos()).Line,
						end:   fset.Position(fd.End()).Line,
					})
				}
			}
		}
		for _, cg := range f.Comments {
			if docComments[cg] {
				continue
			}
			for _, c := range cg.List {
				if name, arg, ok := parseDirective(c); ok {
					line := fset.Position(c.Pos()).Line
					a.lines[fname] = append(a.lines[fname], annotEntry{
						name: name, arg: arg, line: line, trailing: codeLines[line],
					})
				}
			}
		}
	}
	return a
}

// codeLineSet records which lines of f carry non-comment tokens, so a
// directive can tell whether it trails code or stands on its own line.
// (Node positions mark the start of every token-bearing node, which covers
// any line a directive could trail.)
func codeLineSet(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup, *ast.File:
			return true
		}
		lines[fset.Position(n.Pos()).Line] = true
		return true
	})
	return lines
}

// Covers reports whether directive name applies at pos: a trailing
// line-scoped directive on the same line, a standalone directive on the
// line above, an enclosing annotated function, or a file-scoped directive.
func (a *Annotations) Covers(name string, pos token.Pos) bool {
	_, ok := a.Lookup(name, pos)
	return ok
}

// Lookup is Covers plus the directive's justification argument.
func (a *Annotations) Lookup(name string, pos token.Pos) (arg string, ok bool) {
	p := a.fset.Position(pos)
	for _, e := range a.files[p.Filename] {
		if e.name == name {
			return e.arg, true
		}
	}
	for _, fr := range a.funcs[p.Filename] {
		if fr.name == name && fr.start <= p.Line && p.Line <= fr.end {
			return fr.arg, true
		}
	}
	for _, e := range a.lines[p.Filename] {
		if e.name == name && e.covers(p.Line) {
			return e.arg, true
		}
	}
	return "", false
}

// covers reports whether the line-scoped entry applies to code on line: a
// trailing directive covers exactly its own line, a standalone comment line
// covers exactly the next line. (Anything looser bleeds annotations onto
// neighbouring struct fields or statements.)
func (e annotEntry) covers(line int) bool {
	if e.trailing {
		return e.line == line
	}
	return e.line == line-1
}

// LookupField finds a line-scoped directive for a struct field at pos —
// trailing the field's line or standing alone on the line above. Unlike
// Lookup it ignores function- and file-scoped directives, which have no
// field-annotation meaning.
func (a *Annotations) LookupField(name string, pos token.Pos) (arg string, ok bool) {
	p := a.fset.Position(pos)
	for _, e := range a.lines[p.Filename] {
		if e.name == name && e.covers(p.Line) {
			return e.arg, true
		}
	}
	return "", false
}

// FuncAnnotated reports whether fd's doc comment carries the directive.
func FuncAnnotated(name string, fd *ast.FuncDecl) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if n, _, ok := parseDirective(c); ok && n == name {
			return true
		}
	}
	return false
}

// FuncAnnotArgs returns the argument of every occurrence of the directive in
// fd's doc comment (a function may be //silofuse:locked under more than one
// mutex). ok is false when the directive is absent.
func FuncAnnotArgs(name string, fd *ast.FuncDecl) (args []string, ok bool) {
	if fd == nil || fd.Doc == nil {
		return nil, false
	}
	for _, c := range fd.Doc.List {
		if n, arg, found := parseDirective(c); found && n == name {
			args = append(args, arg)
			ok = true
		}
	}
	return args, ok
}
