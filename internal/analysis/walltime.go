package analysis

import (
	"go/ast"
)

// Walltime forbids wall-clock reads (time.Now, time.Since, time.Until) in
// the deterministic packages — the ones whose outputs must be a pure
// function of their seeds. Timing belongs to the telemetry layer: route it
// through obs.Recorder (Now/Since are nil-gated there), or annotate the site
// //silofuse:walltime-ok with a one-line justification.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now/time.Since in deterministic packages",
	Run:  runWalltime,
}

// deterministicPkgs are the package names whose results the paper's
// fixed-seed evaluation depends on being bit-reproducible.
var deterministicPkgs = map[string]bool{
	"tensor":      true,
	"nn":          true,
	"diffusion":   true,
	"autoencoder": true,
	"core":        true,
	"silo":        true,
}

var walltimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWalltime(p *Pass) {
	if !deterministicPkgs[p.Pkg.Name()] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !walltimeFuncs[fn.Name()] {
				return true
			}
			if arg, ok := p.Annot.Lookup(AnnotWalltimeOK, call.Pos()); ok {
				if arg == "" {
					p.Report(call.Pos(), "silofuse:walltime-ok annotation needs a one-line justification")
				}
				return true
			}
			p.Report(call.Pos(), "time.%s in deterministic package %q; route timing through obs.Recorder or annotate //silofuse:walltime-ok <why>", fn.Name(), p.Pkg.Name())
			return true
		})
	}
}
