package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FixedReduce pins the data-parallel all-reduce's bit-identity invariant at
// the source level: float addition is non-associative, so the reduce path
// must fold contributions in one fixed ascending order, never in an order
// that depends on scheduling, map layout, or worker count. Two halves:
//
//  1. A function annotated //silofuse:fixedreduce may not contain
//     order-unstable constructs: range over a map (random order), go
//     statements (scheduling order), select statements (ready order), or
//     descending for loops (an inverted fold is a different floating-point
//     sum). The annotation marks the accumulation sites of the all-reduce;
//     anything that could reorder the fold is banned from their bodies.
//
//  2. In the reduce-bearing packages (tensor, diffusion, silo), every
//     non-test function whose name starts with "Reduce" or "reduce" must
//     carry the annotation, so a new reduction kernel cannot silently skip
//     the discipline and removing an annotation fails the repo self-check.
var FixedReduce = &Analyzer{
	Name: "fixedreduce",
	Doc:  "keep //silofuse:fixedreduce reduce paths free of order-unstable accumulation",
	Run:  runFixedReduce,
}

// reducePkgs are the packages whose Reduce-named functions form the
// all-reduce path of data-parallel training.
var reducePkgs = map[string]bool{"tensor": true, "diffusion": true, "silo": true}

func runFixedReduce(p *Pass) {
	for _, f := range p.Files {
		fname := p.Fset.Position(f.Pos()).Filename
		inTest := strings.HasSuffix(fname, "_test.go")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			annotated := FuncAnnotated(AnnotFixedReduce, fd)
			if annotated {
				checkFixedReduceBody(p, fd)
			}
			if !annotated && !inTest && reducePkgs[p.Pkg.Name()] && isReduceName(fd.Name.Name) {
				p.Report(fd.Name.Pos(), "reduction %s is missing the //silofuse:fixedreduce annotation", fd.Name.Name)
			}
		}
	}
}

// isReduceName matches the reduction naming family: Reduce*/reduce*
// functions. Names that merely contain "Reduced" (SendReduced, the
// transport half) are not accumulation sites and stay out of scope.
func isReduceName(name string) bool {
	return strings.HasPrefix(name, "Reduce") || strings.HasPrefix(name, "reduce")
}

func checkFixedReduceBody(p *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					p.Report(n.Pos(), "map iteration folds in random order in fixedreduce function %s", name)
				}
			}
		case *ast.GoStmt:
			p.Report(n.Pos(), "go statement makes accumulation order scheduling-dependent in fixedreduce function %s", name)
		case *ast.SelectStmt:
			p.Report(n.Pos(), "select folds in channel-ready order in fixedreduce function %s", name)
		case *ast.ForStmt:
			if post, ok := n.Post.(*ast.IncDecStmt); ok && post.Tok == token.DEC {
				p.Report(n.Pos(), "descending loop inverts the fold order in fixedreduce function %s", name)
			}
		}
		return true
	})
}
