package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked analysis unit: a package's syntax, type
// information and annotation index. Test files are folded into their
// package's unit (and external _test packages form their own unit), so the
// analyzers see test code too.
type Package struct {
	Path   string
	Name   string
	Fset   *token.FileSet
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info
	Annot  *Annotations
}

// loader resolves imports for a module rooted at root: module-internal paths
// are parsed and type-checked from source on demand, everything else (the
// standard library) goes through go/importer's source importer. No x/tools.
type loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	std     types.Importer
	cache   map[string]*types.Package
	loading map[string]bool
}

func newLoader(root, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer for dependency resolution. Only the
// non-test files of a package are visible to importers, mirroring the go
// tool.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.modPath != "" && (path == l.modPath || strings.HasPrefix(path, l.modPath+"/")) {
		if l.loading[path] {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
		dir := filepath.Join(l.root, strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/"))
		bp, err := build.Default.ImportDir(dir, 0)
		if err != nil {
			return nil, fmt.Errorf("resolve %s: %w", path, err)
		}
		files, err := l.parse(dir, bp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg, _, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) parse(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func (l *loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	return pkg, info, nil
}

// unit type-checks one analysis unit and wraps it as a Package.
func (l *loader) unit(path, dir string, names []string) (*Package, error) {
	files, err := l.parse(dir, names)
	if err != nil {
		return nil, err
	}
	pkg, info, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:   path,
		Name:   pkg.Name(),
		Fset:   l.fset,
		Syntax: files,
		Types:  pkg,
		Info:   info,
		Annot:  CollectAnnotations(l.fset, files),
	}, nil
}

// LoadModule loads every package under the module rooted at root (its go.mod
// names the module path), including in-package and external test files, and
// returns the analysis units in deterministic path order. Directories named
// testdata, hidden directories, and vendored trees are skipped, mirroring
// the go tool's ./... semantics.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	l := newLoader(root, modPath)
	var pkgs []*Package
	for _, dir := range dirs {
		bp, err := build.Default.ImportDir(dir, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, err
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		// The analysis unit folds in-package test files into the package;
		// importers of the package still get the test-free variant via
		// loader.Import.
		names := append(append([]string{}, bp.GoFiles...), bp.TestGoFiles...)
		if len(names) > 0 {
			pkg, err := l.unit(path, dir, names)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
		if len(bp.XTestGoFiles) > 0 {
			pkg, err := l.unit(path+"_test", dir, bp.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir loads a single directory as one package with no module context —
// imports resolve through the standard library only. The fixture harness
// uses it for testdata packages.
func LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	l := newLoader(dir, "")
	return l.unit("fixture/"+filepath.Base(dir), dir, names)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}
