package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoAlloc enforces the zero-allocation contract of the hot-path kernels.
// It has two halves:
//
//  1. A function whose doc comment carries //silofuse:noalloc may not
//     contain allocating constructs: make, append, new, composite literals,
//     closures (func literals), or string concatenation. Allocation in
//     callees is out of scope — the annotation marks the steady-state
//     entry points whose own bodies must stay clean (cold-path growth
//     lives in un-annotated helpers like tensor.Ensure).
//
//  2. In the kernel packages (tensor, nn, diffusion), every exported
//     function or method whose name ends in "Into" must carry the
//     annotation, so a new destination-passing kernel cannot silently skip
//     the contract and removing an annotation fails the repo self-check.
//
//  3. Annotated bodies may not invoke profile capture: calls into
//     runtime/pprof or the phase profiler (silofuse/internal/obs/profile,
//     or any method named ProfilePhase*) snapshot the whole heap or write
//     gzipped protobuf — allocation and I/O that have no place inside a
//     zero-allocation kernel. Phase boundaries live in the orchestration
//     layer, never inside the kernels they measure.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "keep //silofuse:noalloc kernels free of allocating constructs",
	Run:  runNoAlloc,
}

// kernelPkgs are the packages whose exported *Into functions form the
// destination-passing kernel family pinned by the AllocsPerRun==0 tests.
var kernelPkgs = map[string]bool{"tensor": true, "nn": true, "diffusion": true}

func runNoAlloc(p *Pass) {
	for _, f := range p.Files {
		fname := p.Fset.Position(f.Pos()).Filename
		inTest := strings.HasSuffix(fname, "_test.go")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			annotated := FuncAnnotated(AnnotNoAlloc, fd)
			if annotated {
				checkNoAllocBody(p, fd)
			}
			if !annotated && !inTest && kernelPkgs[p.Pkg.Name()] &&
				fd.Name.IsExported() && strings.HasSuffix(fd.Name.Name, "Into") {
				p.Report(fd.Name.Pos(), "exported kernel %s is missing the //silofuse:noalloc annotation", fd.Name.Name)
			}
		}
	}
}

func checkNoAllocBody(p *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			p.Report(n.Pos(), "composite literal allocates in noalloc function %s", name)
		case *ast.FuncLit:
			p.Report(n.Pos(), "closure allocates in noalloc function %s", name)
			return false // don't double-report the closure's own body
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "new", "append":
						p.Report(n.Pos(), "%s allocates in noalloc function %s", b.Name(), name)
					}
				}
			}
			if f := calleeFunc(p.Info, n); f != nil && isProfileCapture(f) {
				p.Report(n.Pos(), "profile capture %s in noalloc function %s (capture allocates; hook phases in the orchestration layer)", f.Name(), name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(p.Info, n) {
				p.Report(n.Pos(), "string concatenation allocates in noalloc function %s", name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(p.Info, n.Lhs[0]) {
				p.Report(n.Pos(), "string concatenation allocates in noalloc function %s", name)
			}
		}
		return true
	})
}

// isProfileCapture reports whether f is a profiling-capture entry point: a
// function of runtime/pprof or the phase-profiler package, or any method
// named ProfilePhase* (the Recorder's phase hooks keep that prefix exactly
// so this rule can spot them without resolving the module path).
func isProfileCapture(f *types.Func) bool {
	if strings.HasPrefix(f.Name(), "ProfilePhase") {
		return true
	}
	if f.Pkg() == nil {
		return false
	}
	path := f.Pkg().Path()
	return path == "runtime/pprof" || strings.HasSuffix(path, "obs/profile")
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
