package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ChanSafety guards the close/send/receive contracts around channels that
// some path in the package close()s. Channel identity is resolved to a
// "root" — the struct field, package variable, or make-site local a channel
// expression traces back to through selectors, map/slice indexing, local
// assignments, range clauses, and single-result same-package accessor calls
// (the LocalBus.box(to) shape). Roots the analyzer cannot resolve produce
// no findings: the check is conservative by construction.
//
// Three rules, all in non-test files:
//
//  1. close-then-send: a send on a root that is also close()d in this
//     package panics if the close wins the race, so both the send and the
//     close must run under some mutex (a Lock/RLock earlier in the same
//     function body) or carry //silofuse:chan-ok <why>.
//
//  2. closed-signal receives: a plain value receive (v := <-ch, f(<-ch))
//     from a root that is close()d elsewhere silently yields zero values
//     after close; use the v, ok := <-ch form. Signal-only waits (<-done,
//     case <-done:) and ranges are fine — termination is the point.
//
//  3. capacity discipline: in the hot-path packages (tensor, nn, diffusion,
//     silo), an unbuffered make(chan T) is a rendezvous that stalls the
//     sender until a receiver arrives; give the channel an explicit
//     capacity or justify the rendezvous with //silofuse:unbuffered-ok.
var ChanSafety = &Analyzer{
	Name: "chansafety",
	Doc:  "guard close-then-send races, closed-signal receives, and unbuffered hot-path channels",
	Run:  runChanSafety,
}

// hotChanPkgs are the packages where an unbuffered channel on a steady-state
// path is a latent stall; capacity must be explicit or justified.
var hotChanPkgs = map[string]bool{"tensor": true, "nn": true, "diffusion": true, "silo": true}

// chanSite is one send/close/receive on a resolved channel root.
type chanSite struct {
	root types.Object
	pos  token.Pos
	fd   *ast.FuncDecl
	what string // "send" or "close", for diagnostics
}

func runChanSafety(p *Pass) {
	decls := funcDecls(p)
	var sends, closes, valueRecvs []chanSite
	closedRoots := make(map[types.Object]bool)
	sentRoots := make(map[types.Object]bool)
	lockOpsOf := make(map[*ast.FuncDecl][]lockOp)

	for _, f := range p.Files {
		fname := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(fname, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			parents := buildParents(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SendStmt:
					if root := chanRoot(p, decls, fd, n.Chan, 0, nil); root != nil {
						sends = append(sends, chanSite{root: root, pos: n.Arrow, fd: fd, what: "send"})
						sentRoots[root] = true
					}
				case *ast.CallExpr:
					checkMakeChan(p, n)
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 {
						if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
							if root := chanRoot(p, decls, fd, n.Args[0], 0, nil); root != nil {
								closes = append(closes, chanSite{root: root, pos: n.Pos(), fd: fd, what: "close"})
								closedRoots[root] = true
							}
						}
					}
				case *ast.UnaryExpr:
					if n.Op == token.ARROW && !safeReceiveContext(parents[n]) {
						if root := chanRoot(p, decls, fd, n.X, 0, nil); root != nil {
							valueRecvs = append(valueRecvs, chanSite{root: root, pos: n.Pos(), fd: fd})
						}
					}
				}
				return true
			})
		}
	}

	ops := func(fd *ast.FuncDecl) []lockOp {
		if o, ok := lockOpsOf[fd]; ok {
			return o
		}
		o := collectLockOps(p.Info, fd.Body)
		lockOpsOf[fd] = o
		return o
	}
	report := func(s chanSite, other string) {
		arg, ok := p.Annot.Lookup(AnnotChanOK, s.pos)
		if ok {
			if arg == "" {
				p.Report(s.pos, "chan-ok annotation needs a one-line justification")
			}
			return
		}
		if lockHeldBefore(ops(s.fd), nil, s.pos) {
			return
		}
		p.Report(s.pos, "%s on channel %s, which another path in this package %ss; hold a mutex around both or justify with //silofuse:chan-ok <why>",
			s.what, s.root.Name(), other)
	}
	for _, s := range sends {
		if closedRoots[s.root] {
			report(s, "close")
		}
	}
	for _, c := range closes {
		if sentRoots[c.root] {
			report(c, "send")
		}
	}
	for _, r := range valueRecvs {
		if !closedRoots[r.root] {
			continue
		}
		if arg, ok := p.Annot.Lookup(AnnotChanOK, r.pos); ok {
			if arg == "" {
				p.Report(r.pos, "chan-ok annotation needs a one-line justification")
			}
			continue
		}
		p.Report(r.pos, "value receive from channel %s, which this package closes, cannot tell a real value from the closed signal; use the v, ok := <-ch form", r.root.Name())
	}
}

// safeReceiveContext reports whether a receive expression's parent makes the
// closed case explicit or irrelevant: the comma-ok assignment form, or a
// bare signal wait (an expression statement, including `case <-ch:`).
func safeReceiveContext(parent ast.Node) bool {
	switch parent := parent.(type) {
	case *ast.AssignStmt:
		return len(parent.Lhs) == 2 && len(parent.Rhs) == 1
	case *ast.ExprStmt:
		return true
	}
	return false
}

// checkMakeChan enforces rule 3: explicit capacity (or a justified
// annotation) for channels made in hot-path packages.
func checkMakeChan(p *Pass, call *ast.CallExpr) {
	if !hotChanPkgs[p.Pkg.Name()] || len(call.Args) != 1 {
		return
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return
	}
	t := p.Info.TypeOf(call.Args[0])
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return
	}
	arg, ok := p.Annot.Lookup(AnnotUnbufferedOK, call.Pos())
	if !ok {
		p.Report(call.Pos(), "unbuffered make(chan) in hot-path package %s stalls the sender at a rendezvous; give it a capacity or justify with //silofuse:unbuffered-ok <why>", p.Pkg.Name())
		return
	}
	if arg == "" {
		p.Report(call.Pos(), "unbuffered-ok annotation needs a one-line justification")
	}
}

// chanRoot resolves a channel expression to the object that identifies it
// across functions: a struct field (b.boxes, through any indexing), a
// package-level variable, or the local variable of its make site. Locals
// are chased through := / = assignments and range clauses; single-result
// same-package calls are chased into their return expressions (accessor
// helpers). nil means "unknown" and suppresses findings.
func chanRoot(p *Pass, decls map[*types.Func]*ast.FuncDecl, fd *ast.FuncDecl, e ast.Expr, depth int, seen map[types.Object]bool) types.Object {
	if depth > 8 {
		return nil
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := p.Info.Uses[e]
		if obj == nil {
			obj = p.Info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return nil
		}
		if v.IsField() || v.Parent() == p.Pkg.Scope() {
			return v
		}
		if seen[v] {
			return nil
		}
		if seen == nil {
			seen = make(map[types.Object]bool)
		}
		seen[v] = true
		madeHere := false
		for _, src := range localDefSources(p, fd, v) {
			if isMakeChan(p, src) {
				madeHere = true
				continue
			}
			if root := chanRoot(p, decls, fd, src, depth+1, seen); root != nil {
				return root
			}
		}
		if madeHere {
			// A channel made here but stored into a field or package var is
			// identified by that destination (the LocalBus.box shape: the
			// fresh inbox lands in b.boxes, which Close ranges over).
			if root := localStoreTarget(p, decls, fd, v, depth, seen); root != nil {
				return root
			}
			return v
		}
		return nil
	case *ast.SelectorExpr:
		if v, ok := p.Info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
		return nil
	case *ast.IndexExpr:
		return chanRoot(p, decls, fd, e.X, depth+1, seen)
	case *ast.CallExpr:
		fn := calleeFunc(p.Info, e)
		if fn == nil {
			return nil
		}
		callee := decls[fn]
		if callee == nil || callee.Type.Results == nil || callee.Type.Results.NumFields() != 1 {
			return nil
		}
		var root types.Object
		ast.Inspect(callee.Body, func(n ast.Node) bool {
			if root != nil {
				return false
			}
			if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
				root = chanRoot(p, decls, callee, ret.Results[0], depth+1, seen)
			}
			return root == nil
		})
		return root
	}
	return nil
}

// isMakeChan reports whether e is a make(chan ...) call, buffered or not.
func isMakeChan(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	t := p.Info.TypeOf(call.Args[0])
	if t == nil {
		return false
	}
	_, ok = t.Underlying().(*types.Chan)
	return ok
}

// localStoreTarget resolves the root of the destination a local channel is
// stored into (b.boxes[name] = ch), skipping stores back onto the local
// itself.
func localStoreTarget(p *Pass, decls map[*types.Func]*ast.FuncDecl, fd *ast.FuncDecl, v *types.Var, depth int, seen map[types.Object]bool) types.Object {
	var root types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if root != nil {
			return false
		}
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Lhs) != len(a.Rhs) {
			return true
		}
		for i, rhs := range a.Rhs {
			id, ok := ast.Unparen(rhs).(*ast.Ident)
			if !ok || p.Info.Uses[id] != types.Object(v) {
				continue
			}
			if r := chanRoot(p, decls, fd, a.Lhs[i], depth+1, seen); r != nil && r != types.Object(v) {
				root = r
			}
		}
		return root == nil
	})
	return root
}

// localDefSources collects the expressions a local variable is defined or
// reassigned from inside fd: matching assignment RHSs, and the ranged
// operand when the variable is a range key/value.
func localDefSources(p *Pass, fd *ast.FuncDecl, v *types.Var) []ast.Expr {
	var out []ast.Expr
	matches := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && (p.Info.Defs[id] == v || p.Info.Uses[id] == types.Object(v))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if matches(lhs) {
						out = append(out, n.Rhs[i])
					}
				}
			} else if len(n.Lhs) == 2 && len(n.Rhs) == 1 && matches(n.Lhs[0]) {
				// comma-ok forms: ch, ok := m[k] sources ch from the map
				// read (receives and type asserts resolve to no root).
				out = append(out, n.Rhs[0])
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if e != nil && matches(e) {
					out = append(out, n.X)
				}
			}
		}
		return true
	})
	return out
}
