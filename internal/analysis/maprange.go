package analysis

import (
	"go/ast"
	"go/types"
)

// MapRange flags ranges over maps whose bodies feed ordered output — they
// run in Go's randomised map order, so whatever they build differs from run
// to run. A range body that appends to a slice, writes to an encoder/writer,
// or publishes on the bus is nondeterministic output unless the enclosing
// function also sorts (any call into package sort or slices, or a method
// named Sort), which is the established repo idiom: collect, sort, emit.
// Bodies that only write map entries or accumulate order-independent sums
// are fine.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "flag map iteration that feeds ordered output without sorting",
	Run:  runMapRange,
}

// orderedSinkMethods are method names that emit in call order: stream
// encoders, writers, and the silo bus/event surfaces.
var orderedSinkMethods = map[string]bool{
	"Encode": true, "EncodeValue": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Publish": true, "Send": true, "Broadcast": true, "Emit": true,
}

// orderedSinkFuncs are package-level print/write helpers keyed by package
// path.
var orderedSinkFuncs = map[string]map[string]bool{
	"fmt": {"Fprint": true, "Fprintf": true, "Fprintln": true, "Print": true, "Printf": true, "Println": true},
	"io":  {"WriteString": true},
}

func runMapRange(p *Pass) {
	for _, f := range p.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			sink := orderedSink(p, rng.Body)
			if sink == "" {
				return true
			}
			fd := enclosingFunc(file, rng.Pos())
			if fd != nil && hasSortCall(p, fd) {
				return true
			}
			p.Report(rng.Pos(), "map iteration %s in random order; sort before emitting (no sort call in this function)", sink)
			return true
		})
	}
}

// orderedSink scans a range body for order-sensitive output and names the
// first kind found ("" when the body is order-independent).
func orderedSink(p *Pass, body *ast.BlockStmt) string {
	var sink string
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "sends on a channel"
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					sink = "appends to a slice"
					return false
				}
			}
			if fn := calleeFunc(p.Info, n); fn != nil && fn.Pkg() != nil {
				sig, _ := fn.Type().(*types.Signature)
				if sig != nil && sig.Recv() != nil {
					if orderedSinkMethods[fn.Name()] {
						sink = "writes to an ordered sink (" + fn.Name() + ")"
					}
				} else if names := orderedSinkFuncs[fn.Pkg().Path()]; names[fn.Name()] {
					sink = "writes to an ordered sink (" + fn.Pkg().Name() + "." + fn.Name() + ")"
				}
			}
		}
		return true
	})
	return sink
}

// hasSortCall reports whether fd's body contains any call into package sort
// or slices, or any method named Sort.
func hasSortCall(p *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil {
			return true
		}
		if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
			found = true
		} else if fn.Name() == "Sort" {
			found = true
		}
		return true
	})
	return found
}
