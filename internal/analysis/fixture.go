package analysis

import (
	"fmt"
	"regexp"
	"strings"
)

// Fixture support: testdata packages assert analyzer behaviour with
// expectation comments in the style of x/tools' analysistest, e.g.
//
//	t0 := time.Now() // want "time.Now in deterministic package"
//
// Each `// want` comment carries one or more double-quoted regexps; every
// regexp must be matched by a distinct diagnostic reported on that line,
// and every diagnostic must match an expectation. Mismatches in either
// direction are returned as failure strings for the test to report.

// wantRx extracts the quoted regexps of a want comment.
var wantRx = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantExpect struct {
	file string
	line int
	rx   *regexp.Regexp
	hit  bool
}

// collectWants parses `// want` expectations from a package's comments.
func collectWants(pkg *Package) ([]*wantExpect, error) {
	var wants []*wantExpect
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRx.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range ms {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &wantExpect{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants, nil
}

// CheckFixture runs the analyzers over the package rooted at dir and
// compares diagnostics against its `// want` comments. It returns one
// failure string per mismatch; an empty slice means the fixture passed.
func CheckFixture(analyzers []*Analyzer, dir string) ([]string, error) {
	pkg, err := LoadDir(dir)
	if err != nil {
		return nil, err
	}
	wants, err := collectWants(pkg)
	if err != nil {
		return nil, err
	}
	diags := Run(analyzers, []*Package{pkg})
	var failures []string
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			failures = append(failures, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.hit {
			failures = append(failures, fmt.Sprintf("%s:%d: no diagnostic matching %q", w.file, w.line, w.rx))
		}
	}
	return failures, nil
}
