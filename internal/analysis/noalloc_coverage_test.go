package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// noallocPinned is the complete expected //silofuse:noalloc annotation set of
// the kernel packages, keyed "package.[Recv.]Func". It mirrors, entry for
// entry, the functions the steady-state allocation tests exercise:
//
//   - tensor kernels: TestSteadyStateKernelAllocs and TestPooledDispatchAllocs
//     (pool_test.go) pin the *Into matmul/elementwise/workspace family;
//   - nn warm paths: TestLinearSteadyStateAllocs (gradcheck_test.go) pins
//     Linear.Forward/Backward, and MSELossInto sits inside the diffusion
//     train-step loop below;
//   - diffusion: TestTrainStepSteadyStateAllocs and TestSamplePerStepAllocs
//     (perf_test.go) pin TrainStep/SampleWithRng, the backbone
//     Forward/Backward they drive, and the QSample/timestep kernels;
//   - f32 kernels: TestSteadyState32KernelAllocs (matmul32_test.go) pins the
//     tensor f32 matmul/elementwise/conversion family, and
//     TestForward32SteadyStateAllocs (forward32_test.go) pins
//     DiffusionMLP32.Forward with the Linear32/GELU32/Sequential32 forwards
//     it drives;
//   - DDP/batched sampling: TestDDPWarmPathAllocs (ddp_test.go) pins
//     TrainStepGrad with the reduce/flatten kernels it feeds
//     (tensor.Reduce*, nn.FlattenGradsInto/SetGrads), and
//     TestSampleBatchWarmAllocs (sample_batch_test.go) pins
//     SampleBatchWithRngs.
//
// Adding an annotation without extending this list (or vice versa) fails the
// test, so the annotation set cannot drift from the perf suite it documents.
var noallocPinned = []string{
	"diffusion.Gaussian.QSampleInto",
	"diffusion.Gaussian.SampleTimestepsInto",
	"diffusion.Model.SampleBatchWithRngs",
	"diffusion.Model.SampleWithRng",
	"diffusion.Model.TrainStep",
	"diffusion.Model.TrainStepGrad",
	"nn.DiffusionMLP.Backward",
	"nn.DiffusionMLP.Forward",
	"nn.DiffusionMLP32.Forward",
	"nn.GELU32.Forward",
	"nn.Linear.Backward",
	"nn.Linear.Forward",
	"nn.Linear32.Forward",
	"nn.Sequential32.Forward",
	"nn.FlattenGradsInto",
	"nn.MSELossInto",
	"nn.SetGrads",
	"tensor.Add32Into",
	"tensor.AddInto",
	"tensor.ConvertInto32",
	"tensor.ConvertInto64",
	"tensor.CopyInto",
	"tensor.MatMul32Into",
	"tensor.MatMulAddRow32Into",
	"tensor.Matrix.ColSumsInto",
	"tensor.Matrix.GatherRowsInto",
	"tensor.MatMulAddRowInto",
	"tensor.MatMulInto",
	"tensor.MatMulT1Into",
	"tensor.MatMulT2Into",
	"tensor.MulElemInto",
	"tensor.ReduceAccumulate",
	"tensor.ReduceScale",
	"tensor.ReduceZero",
	"tensor.SubInto",
}

// TestNoallocAnnotationCoverage scans the kernel packages' non-test sources
// and requires the set of //silofuse:noalloc-annotated functions to equal
// noallocPinned exactly.
func TestNoallocAnnotationCoverage(t *testing.T) {
	var got []string
	fset := token.NewFileSet()
	for _, pkg := range []string{"tensor", "nn", "diffusion"} {
		dir := filepath.Join("..", pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatal(err)
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !FuncAnnotated(AnnotNoAlloc, fd) {
					continue
				}
				name := pkg + "."
				if fd.Recv != nil && len(fd.Recv.List) == 1 {
					typ := fd.Recv.List[0].Type
					if star, ok := typ.(*ast.StarExpr); ok {
						typ = star.X
					}
					if id, ok := typ.(*ast.Ident); ok {
						name += id.Name + "."
					}
				}
				name += fd.Name.Name
				got = append(got, name)
			}
		}
	}
	sort.Strings(got)
	want := append([]string{}, noallocPinned...)
	sort.Strings(want)

	gotSet := make(map[string]bool, len(got))
	for _, g := range got {
		gotSet[g] = true
	}
	for _, w := range want {
		if !gotSet[w] {
			t.Errorf("pinned hot-path function %s has lost its //silofuse:noalloc annotation", w)
		}
		delete(gotSet, w)
	}
	for g := range gotSet {
		t.Errorf("function %s is annotated //silofuse:noalloc but not pinned; add it to noallocPinned and to an AllocsPerRun test", g)
	}
}
