package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardedBy enforces the mutex discipline declared by field annotations.
// It has three halves:
//
//  1. A struct field carrying //silofuse:guardedby <mu> (trailing its line
//     or on the line above) may only be read or written in functions that
//     lock the named sibling mutex first — a positional check: a
//     <mu>.Lock() or <mu>.RLock() call earlier in the same function body
//     counts as evidence, and //silofuse:locked <mu> in a function's doc
//     comment exempts helpers that run with the lock already held at every
//     call site. Constructor writes through a local built from a composite
//     literal or new() are exempt (the object is not shared yet), as are
//     address-of expressions (&b.stats hands the field to code that locks
//     on its own schedule). Test files are exempt from the access rule:
//     tests inspect fields single-threaded after goroutines join.
//
//  2. Defer-unlock pairing: a function that calls <mu>.Lock() but never
//     <mu>.Unlock() (or RLock without RUnlock) on the same mutex leaks the
//     lock on every path.
//
//  3. Lock-copy detection: a receiver, parameter, result, or assignment
//     that moves a sync.Mutex, sync.RWMutex, or sync.WaitGroup by value
//     copies live lock state, which the sync package forbids. This half
//     runs in test files too.
//
// The check is intra-package and identity-based: b.mu.Lock() counts for
// any access through the mu field object, so it cannot distinguish two
// instances of the same struct. The race detector covers what this rule's
// positional approximation cannot.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "enforce //silofuse:guardedby mutex discipline, unlock pairing, and lock-copy rules",
	Run:  runGuardedBy,
}

// guardSpec records one annotated field: the mutex field object that guards
// it and the names used in diagnostics.
type guardSpec struct {
	guard     *types.Var
	guardName string
	owner     string
	field     string
}

func runGuardedBy(p *Pass) {
	guards := collectGuards(p)
	for _, f := range p.Files {
		fname := p.Fset.Position(f.Pos()).Filename
		inTest := strings.HasSuffix(fname, "_test.go")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockCopySig(p, fd)
			if fd.Body == nil {
				continue
			}
			checkLockCopyBody(p, fd)
			ops := collectLockOps(p.Info, fd.Body)
			checkLockPairing(p, fd, ops)
			lockedSet := lockedMutexes(p, fd)
			if !inTest && len(guards) > 0 {
				checkGuardedAccesses(p, fd, guards, ops, lockedSet)
			}
		}
	}
}

// collectGuards resolves every //silofuse:guardedby field annotation in the
// package to (guarded field object, guard mutex object), reporting malformed
// annotations: a missing mutex name, a guard that is not a sibling field, or
// a guard that is not a mutex.
func collectGuards(p *Pass) map[*types.Var]guardSpec {
	guards := make(map[*types.Var]guardSpec)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					for _, nameID := range field.Names {
						arg, ok := p.Annot.LookupField(AnnotGuardedBy, nameID.Pos())
						if !ok {
							continue
						}
						fv, _ := p.Info.Defs[nameID].(*types.Var)
						if fv == nil {
							continue
						}
						if arg == "" {
							p.Report(nameID.Pos(), "guardedby annotation on %s.%s needs a mutex field name", ts.Name.Name, nameID.Name)
							continue
						}
						gv := structFieldVar(p, st, arg)
						if gv == nil {
							p.Report(nameID.Pos(), "guardedby guard %q is not a field of struct %s", arg, ts.Name.Name)
							continue
						}
						if !syncLockTypes[namedSyncType(gv.Type())] {
							p.Report(nameID.Pos(), "guardedby guard %s.%s is not a sync.Mutex or sync.RWMutex", ts.Name.Name, arg)
							continue
						}
						guards[fv] = guardSpec{guard: gv, guardName: arg, owner: ts.Name.Name, field: nameID.Name}
					}
				}
			}
		}
	}
	return guards
}

// structFieldVar finds the named field's type-checker object in st.
func structFieldVar(p *Pass, st *ast.StructType, name string) *types.Var {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name == name {
				v, _ := p.Info.Defs[id].(*types.Var)
				return v
			}
		}
	}
	return nil
}

// lockedMutexes parses fd's //silofuse:locked directives into the set of
// mutex names the caller is promised to hold, reporting directives with no
// mutex name.
func lockedMutexes(p *Pass, fd *ast.FuncDecl) map[string]bool {
	args, ok := FuncAnnotArgs(AnnotLocked, fd)
	if !ok {
		return nil
	}
	set := make(map[string]bool, len(args))
	for _, a := range args {
		if a == "" {
			p.Report(fd.Name.Pos(), "locked annotation on %s needs a mutex field name", fd.Name.Name)
			continue
		}
		set[a] = true
	}
	return set
}

func checkGuardedAccesses(p *Pass, fd *ast.FuncDecl, guards map[*types.Var]guardSpec, ops []lockOp, lockedSet map[string]bool) {
	parents := buildParents(fd.Body)
	fresh := freshLocals(p, fd.Body)
	var lits []*ast.FuncLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, l)
		}
		return true
	})
	inLit := func(pos token.Pos) bool {
		for _, l := range lits {
			if l.Pos() <= pos && pos <= l.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fv, ok := p.Info.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		spec, ok := guards[fv]
		if !ok {
			return true
		}
		if ue, ok := parents[sel].(*ast.UnaryExpr); ok && ue.Op == token.AND {
			return true
		}
		if base := baseIdent(sel.X); base != nil && !inLit(sel.Pos()) {
			if obj := p.Info.Uses[base]; obj != nil && fresh[obj] {
				return true
			}
		}
		if lockedSet[spec.guardName] {
			return true
		}
		if lockHeldBefore(ops, spec.guard, sel.Pos()) {
			return true
		}
		p.Report(sel.Sel.Pos(), "access to %s.%s without holding %s (lock it first or mark the function //silofuse:locked %s)",
			spec.owner, spec.field, spec.guardName, spec.guardName)
		return true
	})
}

// checkLockPairing flags Lock-without-Unlock (and RLock-without-RUnlock) on
// the same mutex object inside one function body. Only the all-or-nothing
// case is reported — mismatched counts across branches are path-sensitive
// territory this analyzer stays out of.
func checkLockPairing(p *Pass, fd *ast.FuncDecl, ops []lockOp) {
	type tally struct {
		lock, unlock, rlock, runlock int
		firstLock, firstRLock        token.Pos
	}
	tallies := make(map[types.Object]*tally)
	order := []types.Object{}
	for _, op := range ops {
		t := tallies[op.obj]
		if t == nil {
			t = &tally{}
			tallies[op.obj] = t
			order = append(order, op.obj)
		}
		switch op.kind {
		case opLock:
			if t.lock == 0 {
				t.firstLock = op.pos
			}
			t.lock++
		case opUnlock:
			t.unlock++
		case opRLock:
			if t.rlock == 0 {
				t.firstRLock = op.pos
			}
			t.rlock++
		case opRUnlock:
			t.runlock++
		}
	}
	for _, obj := range order {
		t := tallies[obj]
		if t.lock > 0 && t.unlock == 0 {
			p.Report(t.firstLock, "%s.Lock in %s has no matching Unlock on any path", obj.Name(), fd.Name.Name)
		}
		if t.rlock > 0 && t.runlock == 0 {
			p.Report(t.firstRLock, "%s.RLock in %s has no matching RUnlock on any path", obj.Name(), fd.Name.Name)
		}
	}
}

// checkLockCopySig flags receivers, parameters, and results that move a sync
// primitive by value through the function signature.
func checkLockCopySig(p *Pass, fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.Info.TypeOf(field.Type)
			if t != nil && containsSyncPrimitive(t) {
				p.Report(field.Type.Pos(), "%s of %s carries a sync primitive by value; pass a pointer", what, fd.Name.Name)
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
	check(fd.Type.Results, "result")
}

// checkLockCopyBody flags assignments that copy an existing value containing
// a sync primitive (x := other.state, s = *ptr, v := arr[i]). Fresh
// composite literals and zero-value declarations create new primitives and
// are fine.
func checkLockCopyBody(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Lhs) != len(a.Rhs) {
			return true
		}
		for i, rhs := range a.Rhs {
			if id, ok := a.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				continue // a blank assignment discards the copy
			}
			if !copiesExistingValue(rhs) {
				continue
			}
			t := p.Info.TypeOf(rhs)
			if t != nil && containsSyncPrimitive(t) {
				p.Report(rhs.Pos(), "assignment in %s copies a value containing a sync primitive", fd.Name.Name)
			}
		}
		return true
	})
}

// copiesExistingValue reports whether e reads an existing memory location
// (so assigning it copies that location's state), as opposed to producing a
// fresh value.
func copiesExistingValue(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// baseIdent unwraps parens and derefs to the root identifier of a selector
// base, or nil when the base is not a plain (possibly dereferenced) ident.
func baseIdent(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.StarExpr:
		return baseIdent(e.X)
	}
	return nil
}

// buildParents maps each node under root to its syntactic parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// freshLocals collects local objects assigned from a composite literal,
// &composite, or new(T) anywhere in body: accesses through them are
// constructor writes on an object no other goroutine can see yet.
func freshLocals(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Lhs) != len(a.Rhs) {
			return true
		}
		for i, lhs := range a.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || !isFreshExpr(p, a.Rhs[i]) {
				continue
			}
			if obj := p.Info.Defs[id]; obj != nil {
				fresh[obj] = true
			} else if obj := p.Info.Uses[id]; obj != nil {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}

// isFreshExpr reports whether e constructs a brand-new object: a composite
// literal, its address, or new(T).
func isFreshExpr(p *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
				return true
			}
		}
	}
	return false
}
