package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shared machinery for the concurrency-discipline analyzers (guardedby,
// goroutinelife, chansafety): resolving mutex lock/unlock calls to the
// mutex object they act on, finding same-package function bodies for
// interprocedural checks, and detecting sync primitives inside types.

// syncLockTypes are the sync types whose Lock family the discipline
// analyzers track; syncCopyTypes additionally may never be copied by value.
var (
	syncLockTypes = map[string]bool{"Mutex": true, "RWMutex": true}
	syncCopyTypes = map[string]bool{"Mutex": true, "RWMutex": true, "WaitGroup": true}
)

// lockOpKind classifies one mutex method call.
type lockOpKind int

const (
	opLock lockOpKind = iota
	opUnlock
	opRLock
	opRUnlock
)

var lockOpNames = map[string]lockOpKind{
	"Lock":    opLock,
	"Unlock":  opUnlock,
	"RLock":   opRLock,
	"RUnlock": opRUnlock,
}

// lockOp is one Lock/Unlock/RLock/RUnlock call resolved to the object that
// identifies the mutex: the final field or variable of the receiver chain
// (b.mu.Lock() -> the mu field's *types.Var).
type lockOp struct {
	kind lockOpKind
	obj  types.Object
	pos  token.Pos
}

// mutexOpOf resolves call to a lockOp when it is a sync.Mutex/sync.RWMutex
// method invocation whose receiver resolves to a named object.
func mutexOpOf(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	kind, ok := lockOpNames[f.Name()]
	if !ok {
		return lockOp{}, false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !syncLockTypes[namedSyncType(sig.Recv().Type())] {
		return lockOp{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	obj := chainObject(info, sel.X)
	if obj == nil {
		return lockOp{}, false
	}
	return lockOp{kind: kind, obj: obj, pos: call.Pos()}, true
}

// chainObject resolves a receiver expression to its identifying object: the
// final ident or selector field of the chain (b.mu -> mu's field var, mu ->
// mu's var). Parens and derefs are unwrapped; anything else is anonymous.
func chainObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.StarExpr:
		return chainObject(info, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return chainObject(info, e.X)
		}
	}
	return nil
}

// namedSyncType returns the type's name when it is a (possibly pointered)
// named type of package sync, else "".
func namedSyncType(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	return obj.Name()
}

// collectLockOps gathers every resolvable mutex lock/unlock call inside body
// (closures included — a closure runs with whatever locks its call site
// arranges, which is beyond this analysis's scope either way).
func collectLockOps(info *types.Info, body *ast.BlockStmt) []lockOp {
	var ops []lockOp
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := mutexOpOf(info, call); ok {
				ops = append(ops, op)
			}
		}
		return true
	})
	return ops
}

// lockHeldBefore reports whether a Lock or RLock on obj appears before pos
// in ops (nil obj: any mutex counts). The check is positional, not
// path-sensitive: mu.Lock() anywhere above the access is taken as evidence
// the author thought about the lock — the race detector covers the rest.
func lockHeldBefore(ops []lockOp, obj types.Object, pos token.Pos) bool {
	for _, op := range ops {
		if (op.kind == opLock || op.kind == opRLock) && op.pos < pos &&
			(obj == nil || op.obj == obj) {
			return true
		}
	}
	return false
}

// funcDecls indexes the package's function declarations by their type-checker
// object, so analyzers can follow a call or go statement into a same-package
// body.
func funcDecls(p *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// containsSyncPrimitive reports whether a value of type t embeds a
// sync.Mutex, sync.RWMutex or sync.WaitGroup by value, so copying the value
// copies live lock state. Pointers, slices, maps and channels are
// indirections and stop the search.
func containsSyncPrimitive(t types.Type) bool {
	return containsSyncPrim(t, make(map[types.Type]bool))
}

func containsSyncPrim(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if _, ok := t.Underlying().(*types.Pointer); ok {
		// A pointer to a lock is exactly how locks should travel; only the
		// pointed-to value holds state. (namedSyncType unwraps pointers for
		// method-receiver resolution, so check before calling it.)
		return false
	}
	if syncCopyTypes[namedSyncType(t)] {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsSyncPrim(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsSyncPrim(u.Elem(), seen)
	}
	return false
}
