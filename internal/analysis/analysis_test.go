package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// TestFixtures runs the full analyzer suite over every testdata package and
// checks its diagnostics against the `// want` expectations, in both
// directions: each expectation must be matched by a diagnostic on its line,
// and each diagnostic must be expected.
func TestFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src")
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatalf("no fixture packages under %s", root)
	}
	byName := make(map[string]bool)
	for _, a := range All() {
		byName[a.Name] = true
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		delete(byName, e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			failures, err := CheckFixture(All(), filepath.Join(root, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range failures {
				t.Error(f)
			}
		})
	}
	for name := range byName {
		t.Errorf("analyzer %s has no fixture package under %s", name, root)
	}
}

// TestFixtureHarnessRejectsBadWants pins the harness itself: a fixture whose
// expectations don't line up must produce failures, not silently pass.
func TestFixtureHarnessRejectsBadWants(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

func cmp(x, y float64) bool {
	return x == y
}

func fine(a, b int) bool {
	return a == b // want "exact floating-point"
}
`
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	failures, err := CheckFixture(All(), dir)
	if err != nil {
		t.Fatal(err)
	}
	// One unexpected diagnostic (the unannotated comparison) and one unmet
	// expectation (the want on an integer comparison).
	if len(failures) != 2 {
		t.Fatalf("got %d failures, want 2: %v", len(failures), failures)
	}
}
