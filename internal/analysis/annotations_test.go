package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parseAnnotations parses one source file and returns its annotation index
// plus the fset, for scope-resolution tests that don't need type checking.
func parseAnnotations(t *testing.T, src string) (*token.FileSet, *ast.File, *Annotations) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, CollectAnnotations(fset, []*ast.File{f})
}

// posOnLine returns a position on the given 1-based line of the file.
func posOnLine(fset *token.FileSet, f *ast.File, line int) token.Pos {
	tf := fset.File(f.Pos())
	return tf.LineStart(line)
}

// TestAnnotationScopes pins the placement grammar: file-doc directives cover
// the whole file, function-doc directives cover the function span, trailing
// directives cover exactly their own line, and standalone comment lines
// cover exactly the next line — never neighbours in either direction.
func TestAnnotationScopes(t *testing.T) {
	const src = `// Package p tests annotation scoping.
//
//silofuse:bitwise-ok parity harness compares bit patterns
package p

import "sync"

type box struct {
	mu sync.Mutex
	//silofuse:guardedby mu
	standalone int
	neighbour  int
	trailing   int //silofuse:guardedby mu
	after      int
}

// doc-scoped directive covers the body.
//
//silofuse:locked mu
func (b *box) helper() { b.standalone++ }

func (b *box) plain() { b.trailing++ }

func body() {
	//silofuse:walltime-ok progress logging only
	_ = 1
	_ = 2
}
`
	fset, f, annot := parseAnnotations(t, src)

	tests := []struct {
		name      string
		directive string
		line      int
		wantOK    bool
		wantArg   string
	}{
		{"file scope covers any line", AnnotBitwiseOK, 22, true, "parity harness compares bit patterns"},
		{"standalone covers next line", AnnotGuardedBy, 11, true, "mu"},
		{"standalone does not bleed past one line", AnnotGuardedBy, 12, false, ""},
		{"trailing covers its own line", AnnotGuardedBy, 13, true, "mu"},
		{"trailing does not cover the next line", AnnotGuardedBy, 14, false, ""},
		{"func doc covers body lines", AnnotLocked, 20, true, "mu"},
		{"func doc does not cover other funcs", AnnotLocked, 22, false, ""},
		{"standalone in body covers next stmt", AnnotWalltimeOK, 26, true, "progress logging only"},
		{"standalone in body does not cover later stmts", AnnotWalltimeOK, 27, false, ""},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			arg, ok := annot.Lookup(tc.directive, posOnLine(fset, f, tc.line))
			if ok != tc.wantOK || arg != tc.wantArg {
				t.Fatalf("Lookup(%s, line %d) = (%q, %v), want (%q, %v)",
					tc.directive, tc.line, arg, ok, tc.wantArg, tc.wantOK)
			}
		})
	}
}

// TestLookupFieldIgnoresWiderScopes pins that field annotations only resolve
// from line-scoped directives: a //silofuse:guardedby in a file or function
// doc comment must not annotate every field it happens to span.
func TestLookupFieldIgnoresWiderScopes(t *testing.T) {
	const src = `// Package p.
//
//silofuse:guardedby mu
package p

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}
`
	fset, f, annot := parseAnnotations(t, src)
	if arg, ok := annot.LookupField(AnnotGuardedBy, posOnLine(fset, f, 10)); ok {
		t.Fatalf("LookupField resolved file-scoped directive (arg %q); field scope must be line-local", arg)
	}
	if _, ok := annot.Lookup(AnnotGuardedBy, posOnLine(fset, f, 10)); !ok {
		t.Fatal("Lookup should still see the file-scoped directive")
	}
}

// TestFuncAnnotArgs pins multi-occurrence extraction: a helper may be
// //silofuse:locked under more than one mutex.
func TestFuncAnnotArgs(t *testing.T) {
	const src = `package p

// helper needs both locks.
//
//silofuse:locked mu
//silofuse:locked stateMu
func helper() {}

func bare() {}
`
	_, f, _ := parseAnnotations(t, src)
	var helper, bare *ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			switch fd.Name.Name {
			case "helper":
				helper = fd
			case "bare":
				bare = fd
			}
		}
	}
	args, ok := FuncAnnotArgs(AnnotLocked, helper)
	if !ok || len(args) != 2 || args[0] != "mu" || args[1] != "stateMu" {
		t.Fatalf("FuncAnnotArgs(locked, helper) = (%v, %v), want ([mu stateMu], true)", args, ok)
	}
	if _, ok := FuncAnnotArgs(AnnotLocked, bare); ok {
		t.Fatal("FuncAnnotArgs reported a directive on an unannotated function")
	}
	if _, ok := FuncAnnotArgs(AnnotLocked, nil); ok {
		t.Fatal("FuncAnnotArgs must tolerate a nil FuncDecl")
	}
}

// TestAnnotationValidation drives the validation paths through the real
// analyzers: unknown or ill-typed guard names are rejected, and the
// justification-required directives reject an empty argument.
func TestAnnotationValidation(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string // substring of exactly one expected diagnostic; "" = clean
	}{
		{
			name: "guardedby unknown mutex rejected",
			src: `package p
import "sync"
type s struct {
	mu sync.Mutex
	//silofuse:guardedby nosuch
	n int
}
`,
			want: `guard "nosuch" is not a field of struct s`,
		},
		{
			name: "guardedby non-mutex guard rejected",
			src: `package p
import "sync"
type s struct {
	wg sync.WaitGroup
	//silofuse:guardedby wg
	n int
}
`,
			want: "is not a sync.Mutex or sync.RWMutex",
		},
		{
			name: "guardedby empty arg rejected",
			src: `package p
import "sync"
type s struct {
	mu sync.Mutex
	//silofuse:guardedby
	n int
}
`,
			want: "needs a mutex field name",
		},
		{
			name: "fire-and-forget requires justification",
			src: `package p
func f() {
	//silofuse:fire-and-forget
	go func() {}()
}
`,
			want: "fire-and-forget annotation needs a one-line justification",
		},
		{
			name: "fire-and-forget with justification is clean",
			src: `package p
func f() {
	//silofuse:fire-and-forget best-effort cache warmer, process exit reaps it
	go func() {}()
}
`,
			want: "",
		},
		{
			name: "locked requires mutex name",
			src: `package p
import "sync"
type s struct {
	mu sync.Mutex
	//silofuse:guardedby mu
	n int
}
//silofuse:locked
func (x *s) f() { x.n++ }
`,
			want: "locked annotation on f needs a mutex field name",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			diags := analyzeSource(t, tc.src)
			if tc.want == "" {
				if len(diags) != 0 {
					t.Fatalf("expected clean source, got %v", diags)
				}
				return
			}
			found := false
			for _, d := range diags {
				if strings.Contains(d.Message, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no diagnostic containing %q; got %v", tc.want, diags)
			}
		})
	}
}

// analyzeSource type-checks one in-memory source file as its own package and
// runs the full analyzer suite over it.
func analyzeSource(t *testing.T, src string) []Diagnostic {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return Run(All(), []*Package{pkg})
}
