package analysis

import (
	"go/ast"
	"go/types"
)

// SeededRand forbids the process-global math/rand source: top-level draws
// like rand.Float64() / rand.Intn(n) / rand.Shuffle(...) are rejected
// everywhere, and source constructors seeded from the wall clock
// (rand.NewSource(time.Now().UnixNano())) are rejected too. All randomness
// must flow through an explicitly seeded *rand.Rand so every run is
// reproducible from its recorded seed.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "forbid global math/rand draws and wall-clock-seeded sources",
	Run:  runSeededRand,
}

// randConstructors are the package-level math/rand functions that do not
// draw from the global source; they are allowed, but their seed arguments
// must not come from the wall clock.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2
	"NewPCG": true, "NewChaCha8": true,
}

func runSeededRand(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if path := fn.Pkg().Path(); path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on *rand.Rand carry their own seed
			}
			if randConstructors[fn.Name()] {
				if arg := walltimeArg(p.Info, call); arg != nil {
					p.Report(arg.Pos(), "rand source seeded from the wall clock; use an explicit experiment seed")
				}
				return true
			}
			p.Report(call.Pos(), "rand.%s draws from the process-global source; route randomness through an explicitly seeded *rand.Rand", fn.Name())
			return true
		})
	}
}

// walltimeArg returns the first subexpression of call's arguments that reads
// the wall clock (a call into package time resolving to Now), or nil.
func walltimeArg(info *types.Info, call *ast.CallExpr) ast.Node {
	var found ast.Node
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			if inner, ok := n.(*ast.CallExpr); ok {
				if fn := calleeFunc(info, inner); isPkgFunc(fn, "time", "Now") {
					found = inner
					return false
				}
			}
			return true
		})
	}
	return found
}
