package analysis

import (
	"go/ast"
	"go/token"
)

// NilRecorder pins the telemetry layer's documented nil-safety contract: a
// nil *Recorder (and every handle it gives out, including the phase
// profiler) is "telemetry off", so every exported pointer-receiver method
// in packages obs and profile must begin with a nil-receiver guard.
// Accepted forms:
//
//	func (r *T) M() { if r == nil { ... } ... }   // guard as first statement
//	func (r *T) M() bool { return r != nil }      // single-return nil test
//
// Without the guard, threading a disabled recorder through a hot path
// panics the first time telemetry is off — the exact failure mode the
// contract exists to prevent.
var NilRecorder = &Analyzer{
	Name: "nilrecorder",
	Doc:  "require nil-receiver guards on exported obs and profile pointer methods",
	Run:  runNilRecorder,
}

func runNilRecorder(p *Pass) {
	if p.Pkg.Name() != "obs" && p.Pkg.Name() != "profile" {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recv := pointerRecvName(fd)
			if recv == "" {
				continue
			}
			if beginsWithNilGuard(fd.Body, recv) {
				continue
			}
			p.Report(fd.Name.Pos(), "exported method %s does not begin with a nil-receiver guard (nil *%s must be a no-op)", fd.Name.Name, recvTypeName(fd))
		}
	}
}

// pointerRecvName returns the receiver identifier of a pointer-receiver
// method. Value receivers return "" (copying a value cannot panic on nil),
// as do unnamed pointer receivers (a body that cannot reference its
// receiver is trivially nil-safe).
func pointerRecvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return ""
	}
	field := fd.Recv.List[0]
	if _, ok := field.Type.(*ast.StarExpr); !ok {
		return ""
	}
	if len(field.Names) != 1 {
		return ""
	}
	return field.Names[0].Name
}

// recvTypeName names the receiver's type for diagnostics.
func recvTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	if ix, ok := t.(*ast.IndexExpr); ok {
		if id, ok := ix.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return "?"
}

// beginsWithNilGuard accepts a first-statement if whose condition tests
// recv against nil, or a single-return body whose expression does.
func beginsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return true // empty body touches nothing
	}
	switch first := body.List[0].(type) {
	case *ast.IfStmt:
		if condTestsNil(first.Cond, recv) {
			return true
		}
	case *ast.ReturnStmt:
		if len(body.List) == 1 {
			for _, res := range first.Results {
				if condTestsNil(res, recv) {
					return true
				}
			}
		}
	}
	return false
}

// condTestsNil reports whether expr contains a `recv == nil` or
// `recv != nil` comparison.
func condTestsNil(expr ast.Expr, recv string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		x, xok := ast.Unparen(be.X).(*ast.Ident)
		y, yok := ast.Unparen(be.Y).(*ast.Ident)
		if xok && yok && ((x.Name == recv && y.Name == "nil") || (y.Name == recv && x.Name == "nil")) {
			found = true
			return false
		}
		return true
	})
	return found
}
