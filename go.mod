module silofuse

go 1.22
